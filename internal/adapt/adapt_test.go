package adapt

import (
	"math/rand"
	"testing"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/workload"
)

func draws(d workload.BatchDistribution, n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

func TestDriftDetectorValidation(t *testing.T) {
	if _, err := NewDriftDetector(nil, 10); err == nil {
		t.Fatal("empty reference must error")
	}
	if _, err := NewDriftDetector([]int{0}, 10); err == nil {
		t.Fatal("out-of-range batch must error")
	}
	d, err := NewDriftDetector([]int{50, 60, 70}, 0) // bins default
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Distance([]int{2000}); err == nil {
		t.Fatal("out-of-range current must error")
	}
}

func TestDistanceIdenticalAndDisjoint(t *testing.T) {
	same := draws(workload.DefaultTrace(), 5000, 1)
	d, err := NewDriftDetector(same, DefaultBins)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := d.Distance(same)
	if err != nil || dist != 0 {
		t.Fatalf("self distance = %v, %v", dist, err)
	}
	// Disjoint supports: tiny queries vs huge queries.
	small, _ := NewDriftDetector([]int{1, 2, 3, 4, 5}, DefaultBins)
	dist, err = small.Distance([]int{990, 995, 1000})
	if err != nil || dist != 1 {
		t.Fatalf("disjoint distance = %v, %v", dist, err)
	}
}

func TestDistanceSamplingNoiseIsSmall(t *testing.T) {
	a := draws(workload.DefaultTrace(), 8000, 2)
	b := draws(workload.DefaultTrace(), 8000, 3) // same law, fresh sample
	d, err := NewDriftDetector(a, DefaultBins)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := d.Distance(b)
	if err != nil {
		t.Fatal(err)
	}
	if dist > 0.05 {
		t.Fatalf("same-law distance %v too large", dist)
	}
	// And a genuine shift is far larger.
	shift := draws(workload.Gaussian{Mean: 550, Std: 150}, 8000, 4)
	dist2, _ := d.Distance(shift)
	if dist2 < 0.4 {
		t.Fatalf("shifted distance %v too small", dist2)
	}
}

func TestReplannerNeedsWarmMonitor(t *testing.T) {
	mon := workload.NewMonitor(100)
	if _, err := NewReplanner(cloud.DefaultPool(), models.MustByName("RM2"), 2.5, 0, mon); err == nil {
		t.Fatal("cold monitor must error")
	}
	if _, err := NewReplanner(cloud.DefaultPool(), models.MustByName("RM2"), 2.5, 2, warmMonitor(1)); err == nil {
		t.Fatal("threshold >= 1 must error")
	}
}

func warmMonitor(seed int64) *workload.Monitor {
	mon := workload.NewMonitor(workload.DefaultWindow)
	mon.Warm(rand.New(rand.NewSource(seed)), workload.DefaultTrace(), 8000)
	return mon
}

func TestReplannerStableWithoutDrift(t *testing.T) {
	mon := warmMonitor(5)
	r, err := NewReplanner(cloud.DefaultPool(), models.MustByName("RM2"), 2.5, 0, mon)
	if err != nil {
		t.Fatal(err)
	}
	initial := r.Current()
	if initial.Total() == 0 {
		t.Fatal("empty initial plan")
	}
	// More traffic from the same law: no replanning.
	mon.Warm(rand.New(rand.NewSource(6)), workload.DefaultTrace(), 5000)
	cfg, changed, err := r.Check()
	if err != nil {
		t.Fatal(err)
	}
	if changed || !cfg.Equal(initial) {
		t.Fatalf("spurious replan: %v -> %v", initial, cfg)
	}
}

func TestReplannerReactsToShift(t *testing.T) {
	mon := warmMonitor(7)
	r, err := NewReplanner(cloud.DefaultPool(), models.MustByName("RM2"), 2.5, 0, mon)
	if err != nil {
		t.Fatal(err)
	}
	initial := r.Current()
	// The Fig. 12 shift, exaggerated toward large queries: the optimal mix
	// needs more base instances.
	mon.Warm(rand.New(rand.NewSource(8)), workload.Gaussian{Mean: 550, Std: 150}, workload.DefaultWindow)
	cfg, changed, err := r.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatalf("replanner ignored a gross distribution shift (still %v)", cfg)
	}
	if cfg.Base() <= initial.Base() {
		t.Fatalf("large-query shift should add base instances: %v -> %v", initial, cfg)
	}
	// After rebasing, the same mix must not retrigger.
	_, changed, err = r.Check()
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("detector not rebased after replanning")
	}
}
