package adapt

import (
	"math/rand"
	"testing"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/workload"
)

func draws(d workload.BatchDistribution, n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

func TestDriftDetectorValidation(t *testing.T) {
	if _, err := NewDriftDetector(nil, 10); err == nil {
		t.Fatal("empty reference must error")
	}
	if _, err := NewDriftDetector([]int{0}, 10); err == nil {
		t.Fatal("out-of-range batch must error")
	}
	d, err := NewDriftDetector([]int{50, 60, 70}, 0) // bins default
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Distance([]int{2000}); err == nil {
		t.Fatal("out-of-range current must error")
	}
}

func TestDistanceIdenticalAndDisjoint(t *testing.T) {
	same := draws(workload.DefaultTrace(), 5000, 1)
	d, err := NewDriftDetector(same, DefaultBins)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := d.Distance(same)
	if err != nil || dist != 0 {
		t.Fatalf("self distance = %v, %v", dist, err)
	}
	// Disjoint supports: tiny queries vs huge queries.
	small, _ := NewDriftDetector([]int{1, 2, 3, 4, 5}, DefaultBins)
	dist, err = small.Distance([]int{990, 995, 1000})
	if err != nil || dist != 1 {
		t.Fatalf("disjoint distance = %v, %v", dist, err)
	}
}

func TestDistanceSamplingNoiseIsSmall(t *testing.T) {
	a := draws(workload.DefaultTrace(), 8000, 2)
	b := draws(workload.DefaultTrace(), 8000, 3) // same law, fresh sample
	d, err := NewDriftDetector(a, DefaultBins)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := d.Distance(b)
	if err != nil {
		t.Fatal(err)
	}
	if dist > 0.05 {
		t.Fatalf("same-law distance %v too large", dist)
	}
	// And a genuine shift is far larger.
	shift := draws(workload.Gaussian{Mean: 550, Std: 150}, 8000, 4)
	dist2, _ := d.Distance(shift)
	if dist2 < 0.4 {
		t.Fatalf("shifted distance %v too small", dist2)
	}
}

func TestReplannerNeedsWarmMonitor(t *testing.T) {
	mon := workload.NewMonitor(100)
	if _, err := NewReplanner(cloud.DefaultPool(), models.MustByName("RM2"), 2.5, 0, mon); err == nil {
		t.Fatal("cold monitor must error")
	}
	if _, err := NewReplanner(cloud.DefaultPool(), models.MustByName("RM2"), 2.5, 2, warmMonitor(1)); err == nil {
		t.Fatal("threshold >= 1 must error")
	}
}

func warmMonitor(seed int64) *workload.Monitor {
	mon := workload.NewMonitor(workload.DefaultWindow)
	mon.Warm(rand.New(rand.NewSource(seed)), workload.DefaultTrace(), 8000)
	return mon
}

func TestReplannerStableWithoutDrift(t *testing.T) {
	mon := warmMonitor(5)
	r, err := NewReplanner(cloud.DefaultPool(), models.MustByName("RM2"), 2.5, 0, mon)
	if err != nil {
		t.Fatal(err)
	}
	initial := r.Current()
	if initial.Total() == 0 {
		t.Fatal("empty initial plan")
	}
	// More traffic from the same law: no replanning.
	mon.Warm(rand.New(rand.NewSource(6)), workload.DefaultTrace(), 5000)
	cfg, changed, err := r.Check()
	if err != nil {
		t.Fatal(err)
	}
	if changed || !cfg.Equal(initial) {
		t.Fatalf("spurious replan: %v -> %v", initial, cfg)
	}
}

func TestReplannerReactsToShift(t *testing.T) {
	mon := warmMonitor(7)
	r, err := NewReplanner(cloud.DefaultPool(), models.MustByName("RM2"), 2.5, 0, mon)
	if err != nil {
		t.Fatal(err)
	}
	initial := r.Current()
	// The Fig. 12 shift, exaggerated toward large queries: the optimal mix
	// needs more base instances.
	mon.Warm(rand.New(rand.NewSource(8)), workload.Gaussian{Mean: 550, Std: 150}, workload.DefaultWindow)
	cfg, changed, err := r.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatalf("replanner ignored a gross distribution shift (still %v)", cfg)
	}
	if cfg.Base() <= initial.Base() {
		t.Fatalf("large-query shift should add base instances: %v -> %v", initial, cfg)
	}
	// After rebasing, the same mix must not retrigger.
	_, changed, err = r.Check()
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("detector not rebased after replanning")
	}
}

func TestDriftDetectorSingleBin(t *testing.T) {
	// With one histogram bin every mix collapses to the same distribution:
	// drift is never detectable, by construction.
	d, err := NewDriftDetector([]int{1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := d.Distance([]int{998, 999, 1000})
	if err != nil || dist != 0 {
		t.Fatalf("single-bin distance = %v, %v (want exactly 0)", dist, err)
	}
	if drifted, err := d.Drifted([]int{1000}, 0.01); err != nil || drifted {
		t.Fatalf("single-bin detector must never trip: drifted=%v err=%v", drifted, err)
	}
}

func TestDriftDetectorConstantMix(t *testing.T) {
	// A constant batch size compared against itself: zero TV distance.
	ref := make([]int, 100)
	for i := range ref {
		ref[i] = 500
	}
	d, err := NewDriftDetector(ref, DefaultBins)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := d.Distance(ref[:7])
	if err != nil || dist != 0 {
		t.Fatalf("constant-mix self distance = %v, %v", dist, err)
	}
	// A constant in a different bin: total disjointness, distance 1.
	dist, err = d.Distance([]int{1, 1, 1})
	if err != nil || dist != 1 {
		t.Fatalf("constant-vs-constant disjoint distance = %v, %v", dist, err)
	}
}

func TestDriftDetectorWindowShorterThanBins(t *testing.T) {
	// Fewer samples than bins: histograms stay normalized and distances
	// stay in [0,1] — a short live window never breaks the trigger.
	ref := []int{10, 500, 990}
	d, err := NewDriftDetector(ref, DefaultBins)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := d.Distance(ref)
	if err != nil || dist != 0 {
		t.Fatalf("short-window self distance = %v, %v", dist, err)
	}
	dist, err = d.Distance([]int{250})
	if err != nil {
		t.Fatal(err)
	}
	if dist < 0 || dist > 1 {
		t.Fatalf("distance %v outside [0,1]", dist)
	}
	// 1 of 3 reference samples shares no bin with {10}: TV = 2/3 against
	// the singleton current window.
	dist, err = d.Distance([]int{10})
	if err != nil {
		t.Fatal(err)
	}
	if diff := dist - 2.0/3.0; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("singleton-window distance = %v, want 2/3", dist)
	}
}

func TestDriftDetectorRejectsOutOfRange(t *testing.T) {
	d, err := NewDriftDetector([]int{100}, DefaultBins)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Distance([]int{0}); err == nil {
		t.Fatal("batch 0 must error")
	}
	if _, err := d.Distance([]int{models.MaxBatch + 1}); err == nil {
		t.Fatal("batch above MaxBatch must error")
	}
	if _, err := NewDriftDetector([]int{-5}, DefaultBins); err == nil {
		t.Fatal("negative reference batch must error")
	}
}
