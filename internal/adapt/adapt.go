// Package adapt operationalizes the paper's Fig. 12 story as a reusable
// component: Kairos "adapts when the batch size distribution changes and
// continues to be effective" (Sec. 5.2) because its planner needs only the
// query monitor's recent window — no exploration. The Replanner watches
// the monitored batch-size mix, detects distribution drift, and produces a
// fresh one-shot configuration when the mix has genuinely moved.
package adapt

import (
	"fmt"

	"kairos/internal/cloud"
	"kairos/internal/core"
	"kairos/internal/models"
	"kairos/internal/workload"
)

// DefaultBins is the histogram resolution used for drift detection.
const DefaultBins = 20

// DefaultThreshold is the total-variation distance above which the mix is
// considered drifted (0 = identical, 1 = disjoint).
const DefaultThreshold = 0.15

// DriftDetector measures how far the current batch-size mix has moved from
// a reference snapshot, using total-variation distance over a fixed
// histogram of the [1, MaxBatch] range.
type DriftDetector struct {
	bins      int
	reference []float64
}

// NewDriftDetector builds a detector from a reference sample of batch
// sizes (e.g. the monitor snapshot at planning time).
func NewDriftDetector(reference []int, bins int) (*DriftDetector, error) {
	if bins <= 0 {
		bins = DefaultBins
	}
	if len(reference) == 0 {
		return nil, fmt.Errorf("adapt: empty reference sample")
	}
	d := &DriftDetector{bins: bins}
	var err error
	d.reference, err = histogram(reference, bins)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// histogram builds a normalized histogram over [1, MaxBatch].
func histogram(samples []int, bins int) ([]float64, error) {
	h := make([]float64, bins)
	for _, b := range samples {
		if b < 1 || b > models.MaxBatch {
			return nil, fmt.Errorf("adapt: batch %d outside [1,%d]", b, models.MaxBatch)
		}
		idx := (b - 1) * bins / models.MaxBatch
		if idx >= bins {
			idx = bins - 1
		}
		h[idx]++
	}
	n := float64(len(samples))
	for i := range h {
		h[i] /= n
	}
	return h, nil
}

// Distance returns the total-variation distance in [0, 1] between the
// reference mix and the current sample.
func (d *DriftDetector) Distance(current []int) (float64, error) {
	cur, err := histogram(current, d.bins)
	if err != nil {
		return 0, err
	}
	tv := 0.0
	for i := range cur {
		diff := cur[i] - d.reference[i]
		if diff < 0 {
			diff = -diff
		}
		tv += diff
	}
	return tv / 2, nil
}

// Drifted reports whether the current mix exceeds the threshold distance.
func (d *DriftDetector) Drifted(current []int, threshold float64) (bool, error) {
	dist, err := d.Distance(current)
	if err != nil {
		return false, err
	}
	return dist > threshold, nil
}

// Replanner couples the query monitor to the one-shot planner: when the
// monitored mix drifts past the threshold, it replans and rebases the
// reference (the Fig. 12 one-shot response, no online evaluation).
type Replanner struct {
	// Pool, Model and Budget parametrize the planner.
	Pool   cloud.Pool
	Model  models.Model
	Budget float64
	// Threshold is the drift trigger; zero defaults to DefaultThreshold.
	Threshold float64

	monitor  *workload.Monitor
	detector *DriftDetector
	current  cloud.Config
}

// NewReplanner plans an initial configuration from the monitor's current
// view and arms the drift detector on it. The monitor must already have
// observed traffic.
func NewReplanner(pool cloud.Pool, model models.Model, budget float64, threshold float64, monitor *workload.Monitor) (*Replanner, error) {
	if monitor == nil || monitor.Count() == 0 {
		return nil, fmt.Errorf("adapt: replanner needs a warmed monitor")
	}
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("adapt: threshold %v outside (0,1)", threshold)
	}
	r := &Replanner{Pool: pool, Model: model, Budget: budget, Threshold: threshold, monitor: monitor}
	snap := monitor.Snapshot()
	cfg, err := plan(pool, model, budget, snap)
	if err != nil {
		return nil, err
	}
	r.current = cfg
	r.detector, err = NewDriftDetector(snap, DefaultBins)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// plan runs the one-shot pipeline.
func plan(pool cloud.Pool, model models.Model, budget float64, samples []int) (cloud.Config, error) {
	est, err := core.NewEstimator(pool, model, samples, core.EstimatorOptions{})
	if err != nil {
		return nil, err
	}
	return est.Plan(budget), nil
}

// Current returns the configuration in force.
func (r *Replanner) Current() cloud.Config { return r.current }

// Check compares the monitor's present view with the reference; on drift
// it replans, rebases the detector, and returns the new configuration with
// changed=true. Call it periodically (e.g. every few thousand queries).
func (r *Replanner) Check() (cfg cloud.Config, changed bool, err error) {
	snap := r.monitor.Snapshot()
	drifted, err := r.detector.Drifted(snap, r.Threshold)
	if err != nil {
		return nil, false, err
	}
	if !drifted {
		return r.current, false, nil
	}
	next, err := plan(r.Pool, r.Model, r.Budget, snap)
	if err != nil {
		return nil, false, err
	}
	det, err := NewDriftDetector(snap, DefaultBins)
	if err != nil {
		return nil, false, err
	}
	r.detector = det
	changed = !next.Equal(r.current)
	r.current = next
	return r.current, changed, nil
}
