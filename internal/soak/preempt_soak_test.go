package soak

import (
	"testing"
	"time"

	"kairos/internal/cloud"
	"kairos/internal/workload"
)

// TestSoakRunPreemptInProcess: a scheduled spot revocation mid-spike.
// The notice must be answered end to end — drain ahead of the deadline,
// replan, zero drops — and must never surface as an instance death
// (CheckPreemptions would flag that as a violation).
func TestSoakRunPreemptInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping soak run in -short mode")
	}
	sys := startSystem(t, cloud.Config{0, 0, 2, 0})
	report, err := Run(sys, Config{
		Scenario: workload.FlashCrowd(2500, 60, 180, workload.Uniform{Min: 10, Max: 60}),
		Seed:     23,
		Models:   []string{ncf().Name},
		Faults:   []FaultSpec{PreemptAt(0.4, 1500*time.Millisecond)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Passed() {
		t.Fatalf("soak violations: %v", report.Violations)
	}
	if len(report.Faults) != 1 {
		t.Fatalf("faults = %+v", report.Faults)
	}
	if ev := report.Faults[0]; ev.Kind != "preempt" || ev.Err != "" || ev.RecoveryMS < 0 {
		t.Fatalf("preempt never answered: %+v", ev)
	}
	noticed, drained, replanned, deaths := sys.AP.PreemptState()
	if noticed != 1 || drained != 1 || replanned != 1 || deaths != 0 {
		t.Fatalf("preemption accounting: noticed=%d drained=%d replanned=%d deaths=%d",
			noticed, drained, replanned, deaths)
	}
}

// TestSoakRunPreemptionStorm is the fault-storm scenario: overlapping
// revocation notices drain the model's whole fleet at once, then SIGKILLs
// land on the relaunched capacity — transiently taking the model to zero
// live instances, inside the empty-hold window that parks its queries.
// The storm must end with every notice answered, every kill healed, and
// not one admitted query dropped.
func TestSoakRunPreemptionStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping soak storm in -short mode")
	}
	sys := startSystem(t, cloud.Config{0, 0, 2, 0})
	model := ncf().Name
	report, err := Run(sys, Config{
		Scenario:  workload.FlashCrowd(3000, 60, 180, workload.Uniform{Min: 10, Max: 60}),
		Seed:      31,
		Models:    []string{model},
		EmptyHold: 10 * time.Second,
		Faults: []FaultSpec{
			// Both instances noticed while the first drain is still open.
			PreemptAt(0.22, 2*time.Second),
			PreemptAt(0.26, 2*time.Second),
			// Then the crash storm: kills aimed at the same model, the
			// second often landing while the first heal is in flight.
			{Kind: FaultKill, At: 0.55, Model: model},
			{Kind: FaultKill, At: 0.62, Model: model},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Passed() {
		t.Fatalf("storm violations: %v", report.Violations)
	}
	if report.Failed != 0 {
		t.Fatalf("%d admitted queries dropped in the storm", report.Failed)
	}
	if len(report.Faults) != 4 {
		t.Fatalf("faults = %+v", report.Faults)
	}
	for _, ev := range report.Faults {
		if ev.Err != "" {
			t.Fatalf("injection failed: %+v", ev)
		}
		if ev.RecoveryMS < 0 {
			t.Fatalf("%s at %s never recovered: %+v", ev.Kind, ev.Target, ev)
		}
	}
	noticed, drained, replanned, deaths := sys.AP.PreemptState()
	if noticed != 2 || drained != 2 || replanned != 2 || deaths != 0 {
		t.Fatalf("storm preemption accounting: noticed=%d drained=%d replanned=%d deaths=%d",
			noticed, drained, replanned, deaths)
	}
}
