package soak

import (
	"net"
	"testing"
	"time"

	"kairos/internal/autopilot"
	"kairos/internal/cloud"
	"kairos/internal/core"
	"kairos/internal/ingress"
	"kairos/internal/models"
	"kairos/internal/predictor"
	"kairos/internal/server"
	"kairos/internal/workload"
)

// ncf returns the millisecond-scale model the live-path tests use.
func ncf() models.Model { return models.MustByName("NCF") }

// kairosPolicy builds the warmed paper policy over the default pool.
func kairosPolicy(m models.Model) *core.Distributor {
	pool := cloud.DefaultPool()
	names := make([]string, len(pool))
	for i, t := range pool {
		names[i] = t.Name
	}
	return core.NewDistributor(core.DistributorOptions{
		QoS:       m.QoS,
		BaseType:  pool.Base().Name,
		Predictor: predictor.Warmed(m.Latency, names, []int{1, 250, 500, 750, 1000}),
	})
}

// startSystem brings up a full in-process serving stack behind a chaos
// wrapper: fleet -> proxies -> controller -> autopilot with TCP ingress.
func startSystem(t *testing.T, cfg cloud.Config) System {
	t.Helper()
	m := ncf()
	pool := cloud.DefaultPool()
	chaos := WrapChaos(autopilot.NewFleet(1, m))
	fleetPlan := core.FleetPlan{m.Name: cfg}
	addrs, err := autopilot.Deploy(chaos, pool, fleetPlan)
	if err != nil {
		chaos.Close()
		t.Fatal(err)
	}
	ctrl, err := server.NewController(m.Name, kairosPolicy(m), 1, m.Latency, addrs)
	if err != nil {
		chaos.Close()
		t.Fatal(err)
	}
	ap, err := autopilot.New(ctrl, chaos, fleetPlan, autopilot.Options{
		Pool:   pool,
		Models: []models.Model{m},
		Plan: func(map[string][]int, map[string]float64, float64) (core.FleetPlan, error) {
			return fleetPlan.Clone(), nil
		},
		Interval: 20 * time.Millisecond,
		Cooldown: time.Hour, // no replans; the run exercises the heal path
		Ingress:  &ingress.Options{TCPAddr: "127.0.0.1:0"},
	})
	if err != nil {
		ctrl.Close()
		chaos.Close()
		t.Fatal(err)
	}
	t.Cleanup(ap.Close)
	ap.Start()
	return System{AP: ap, Chaos: chaos}
}

// TestSoakRunKillInProcess is the subsystem's own acceptance run: a
// flash crowd replayed through the ingress while one of two instances is
// SIGKILLed mid-spike. Zero violations means no admitted query dropped,
// conservation held in every snapshot, and the fleet healed.
func TestSoakRunKillInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping soak run in -short mode")
	}
	sys := startSystem(t, cloud.Config{0, 0, 2, 0})
	report, err := Run(sys, Config{
		Scenario: workload.FlashCrowd(2500, 60, 180, workload.Uniform{Min: 10, Max: 60}),
		Seed:     42,
		Models:   []string{ncf().Name},
		Faults:   []FaultSpec{KillAt(0.3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Passed() {
		t.Fatalf("soak violations: %v", report.Violations)
	}
	if report.Submitted == 0 || report.Admitted+report.Rejected != report.Submitted {
		t.Fatalf("accounting: %+v", report)
	}
	if report.Failed != 0 {
		t.Fatalf("%d admitted queries failed", report.Failed)
	}
	if len(report.Faults) != 1 {
		t.Fatalf("faults = %+v", report.Faults)
	}
	ev := report.Faults[0]
	if ev.Kind != "kill" || ev.Err != "" || ev.RecoveryMS < 0 {
		t.Fatalf("kill event = %+v", ev)
	}
	if len(report.Trajectory) == 0 {
		t.Fatal("no latency trajectory recorded")
	}
	for _, p := range report.Trajectory {
		if p.Queries > 0 && (p.P50MS <= 0 || p.P99MS < p.P50MS || p.P999MS < p.P99MS) {
			t.Fatalf("malformed trajectory point %+v", p)
		}
	}
}

// TestSoakRunPartition: a hard network partition must read exactly like
// a crash — eviction, redispatch, reap of the unreachable backend, heal.
func TestSoakRunPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping soak run in -short mode")
	}
	sys := startSystem(t, cloud.Config{0, 0, 2, 0})
	report, err := Run(sys, Config{
		Scenario: workload.HeavyTail(2000, 60, 20, 1.2),
		Seed:     7,
		Models:   []string{ncf().Name},
		Faults:   []FaultSpec{{Kind: FaultPartition, At: 0.4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Passed() {
		t.Fatalf("soak violations: %v", report.Violations)
	}
	if ev := report.Faults[0]; ev.RecoveryMS < 0 || ev.Err != "" {
		t.Fatalf("partition event = %+v", ev)
	}
}

// TestSoakRunStall: a transient stall delays traffic without losing a
// byte; everything completes once it lifts, with no eviction at all.
func TestSoakRunStall(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping soak run in -short mode")
	}
	sys := startSystem(t, cloud.Config{0, 0, 2, 0})
	report, err := Run(sys, Config{
		Scenario: workload.Diurnal(2000, 30, 90, 1, workload.Uniform{Min: 10, Max: 60}),
		Seed:     19,
		Models:   []string{ncf().Name},
		Faults:   []FaultSpec{{Kind: FaultStall, At: 0.3, Duration: 300 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Passed() {
		t.Fatalf("soak violations: %v", report.Violations)
	}
	// A stall heals by lifting: no relaunch, so no recovery time.
	if ev := report.Faults[0]; ev.Err != "" || ev.RecoveryMS != -1 {
		t.Fatalf("stall event = %+v", ev)
	}
}

func TestRunValidation(t *testing.T) {
	t.Parallel()
	if _, err := Run(System{}, Config{}); err == nil {
		t.Fatal("nil autopilot must error")
	}
	sc := workload.HeavyTail(1000, 10, 20, 1.2)
	bad := []Config{
		{Models: []string{"NCF"}}, // empty scenario
		{Scenario: sc},            // no models
		{Scenario: sc, Models: []string{"NCF"}, Faults: []FaultSpec{{Kind: FaultKill, At: 1.5}}},                         // At out of range
		{Scenario: sc, Models: []string{"NCF"}, Faults: []FaultSpec{{Kind: FaultWedge, At: 0.5}}},                        // wedge without duration
		{Scenario: sc, Models: []string{"NCF"}, Faults: []FaultSpec{{Kind: "meteor", At: 0.5}}},                          // unknown kind
		{Scenario: sc, Models: []string{"NCF"}, Faults: []FaultSpec{{Kind: FaultStall, At: 0.5, Duration: time.Second}}}, // stall without chaos
	}
	m := ncf()
	fleet := autopilot.NewFleet(1, m)
	defer fleet.Close()
	pool := cloud.DefaultPool()
	fleetPlan := core.FleetPlan{m.Name: cloud.Config{0, 0, 1, 0}}
	addrs, err := autopilot.Deploy(fleet, pool, fleetPlan)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := server.NewController(m.Name, kairosPolicy(m), 1, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := autopilot.New(ctrl, fleet, fleetPlan, autopilot.Options{
		Pool:   pool,
		Models: []models.Model{m},
		Plan: func(map[string][]int, map[string]float64, float64) (core.FleetPlan, error) {
			return fleetPlan.Clone(), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Close()
	for i, cfg := range bad {
		if _, err := Run(System{AP: ap}, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// A valid config against an autopilot with no ingress must error too.
	if _, err := Run(System{AP: ap}, Config{Scenario: sc, Models: []string{m.Name}}); err == nil {
		t.Fatal("missing ingress must error")
	}
}

// echoServer accepts one proxy-side connection at a time and echoes.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1024)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func TestProxyDelayStallCut(t *testing.T) {
	t.Parallel()
	backend := echoServer(t)
	p, err := newProxy(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer p.close()

	conn, err := net.Dial("tcp", p.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	roundTrip := func() (time.Duration, error) {
		t0 := time.Now()
		if _, err := conn.Write([]byte("ping")); err != nil {
			return 0, err
		}
		buf := make([]byte, 4)
		if _, err := conn.Read(buf); err != nil {
			return 0, err
		}
		return time.Since(t0), nil
	}

	if _, err := roundTrip(); err != nil {
		t.Fatalf("clean round trip: %v", err)
	}

	p.setDelay(50 * time.Millisecond)
	d, err := roundTrip()
	if err != nil {
		t.Fatalf("delayed round trip: %v", err)
	}
	if d < 90*time.Millisecond { // two directions, 50ms each
		t.Fatalf("delay not applied: round trip took %v", d)
	}
	p.setDelay(0)

	// Stall: the round trip blocks until the stall lifts — and no byte
	// is lost across it.
	p.setStall(true)
	lifted := make(chan struct{})
	time.AfterFunc(150*time.Millisecond, func() { p.setStall(false); close(lifted) })
	d, err = roundTrip()
	if err != nil {
		t.Fatalf("stalled round trip: %v", err)
	}
	<-lifted
	if d < 100*time.Millisecond {
		t.Fatalf("stall not applied: round trip took %v", d)
	}

	// Cut: the connection resets and new dials are refused service.
	p.cut()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := roundTrip(); err == nil {
		t.Fatal("round trip survived the cut")
	}
}

func TestChaosProviderLifecycle(t *testing.T) {
	t.Parallel()
	m := ncf()
	inner := autopilot.NewFleet(1, m)
	chaos := WrapChaos(inner)
	defer chaos.Close()

	if ts := chaos.TimeScale(); ts != 1 {
		t.Fatalf("time scale %v", ts)
	}
	front, err := chaos.Launch(m.Name, cloud.R5nLarge.Name)
	if err != nil {
		t.Fatal(err)
	}
	// The controller-facing address is the proxy, not the instance.
	backends := inner.Addrs()
	if len(backends) != 1 || backends[0] == front {
		t.Fatalf("front %s, backends %v", front, backends)
	}
	if addrs := chaos.Addrs(); len(addrs) != 1 || addrs[0] != front {
		t.Fatalf("chaos addrs %v", addrs)
	}
	// The wire works end to end through the proxy: a controller can
	// handshake with the instance behind it.
	ctrl, err := server.NewController(m.Name, kairosPolicy(m), 1, m.Latency, []string{front})
	if err != nil {
		t.Fatalf("controller through proxy: %v", err)
	}
	res := ctrl.SubmitWait(m.Name, 20)
	if res.Err != nil {
		t.Fatalf("query through proxy: %v", res.Err)
	}
	ctrl.Close()

	if err := chaos.Stop(front); err != nil {
		t.Fatal(err)
	}
	if inner.Size() != 0 || len(chaos.Addrs()) != 0 {
		t.Fatalf("stop leaked: inner=%d fronts=%v", inner.Size(), chaos.Addrs())
	}
	// Reap of an unknown address is not an error (Reaper contract).
	if err := chaos.Reap(front); err != nil {
		t.Fatal(err)
	}
	// Chaos controls on unknown addresses are errors.
	if err := chaos.Cut(front); err == nil {
		t.Fatal("cut of unknown address must error")
	}
}
