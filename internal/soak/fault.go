package soak

import (
	"fmt"
	"time"
)

// FaultKind names an injectable fault.
type FaultKind string

const (
	// FaultKill SIGKILLs (or force-closes) an instance mid-run. The
	// controller discovers the death through the broken connection,
	// redispatches the stranded queries, and the autopilot's fault path
	// reaps and relaunches — the canonical crash.
	FaultKill FaultKind = "kill"
	// FaultWedge SIGSTOPs an instance for Duration, then SIGCONTs it: the
	// process is alive but serves nothing, queries queue behind it, and
	// everything must still complete once it wakes. Requires a provider
	// that can wedge (the exec fleet).
	FaultWedge FaultKind = "wedge"
	// FaultDelay adds Delay of one-way latency to every chunk on the
	// instance's wire for Duration. Requires a ChaosProvider.
	FaultDelay FaultKind = "delay"
	// FaultStall pauses all traffic to and from the instance for
	// Duration without losing a byte — a transient partition. Requires a
	// ChaosProvider.
	FaultStall FaultKind = "stall"
	// FaultPartition hard-partitions the instance: its connections reset
	// and new ones are refused, so the controller treats it as dead and
	// the fleet must heal around a backend that is still running.
	// Requires a ChaosProvider.
	FaultPartition FaultKind = "partition"
	// FaultPreempt delivers a spot-market revocation notice for the
	// instance (Duration is the notice window), then hard-kills it at the
	// deadline — exactly the sequence a cloud spot market performs. The
	// autopilot must drain ahead of the death and replan before the
	// deadline; a preemption that surfaces as an instance-death fault is
	// an invariant violation (the drain lost the race). Requires a
	// provider implementing autopilot.Preempter (both built-in fleets do).
	FaultPreempt FaultKind = "preempt"
)

// capacityLosing reports whether the fault makes the controller evict
// the instance, so recovery means a relaunch rather than a lift.
func (k FaultKind) capacityLosing() bool {
	return k == FaultKill || k == FaultPartition
}

// FaultSpec schedules one fault within a soak run.
type FaultSpec struct {
	// Kind selects the fault.
	Kind FaultKind
	// At places the injection as a fraction of the scenario duration in
	// [0, 1).
	At float64
	// Duration is the lift window for wedge, delay, and stall faults, and
	// the notice window (notice to deadline kill) for preempt faults
	// (wall clock).
	Duration time.Duration
	// Delay is the added per-chunk latency for FaultDelay.
	Delay time.Duration
	// Model optionally restricts the target to one model's instances;
	// empty targets any instance.
	Model string
}

// validate rejects malformed specs before anything launches.
func (f FaultSpec) validate(hasChaos bool) error {
	if f.At < 0 || f.At >= 1 {
		return fmt.Errorf("soak: fault %s at %.2f outside [0,1)", f.Kind, f.At)
	}
	switch f.Kind {
	case FaultKill:
	case FaultWedge, FaultStall:
		if f.Duration <= 0 {
			return fmt.Errorf("soak: fault %s needs a positive duration", f.Kind)
		}
	case FaultPreempt:
		if f.Duration <= 0 {
			return fmt.Errorf("soak: fault preempt needs a positive notice window (duration)")
		}
	case FaultDelay:
		if f.Duration <= 0 || f.Delay <= 0 {
			return fmt.Errorf("soak: fault delay needs positive duration and delay")
		}
	case FaultPartition:
	default:
		return fmt.Errorf("soak: unknown fault kind %q", f.Kind)
	}
	switch f.Kind {
	case FaultDelay, FaultStall, FaultPartition:
		if !hasChaos {
			return fmt.Errorf("soak: fault %s needs a ChaosProvider (see WrapChaos)", f.Kind)
		}
	}
	return nil
}

// KillAt is the one-fault spec most runs start from.
func KillAt(at float64) FaultSpec { return FaultSpec{Kind: FaultKill, At: at} }

// PreemptAt schedules a spot revocation: notice at the given fraction of
// the run, hard kill notice later.
func PreemptAt(at float64, notice time.Duration) FaultSpec {
	return FaultSpec{Kind: FaultPreempt, At: at, Duration: notice}
}
