// Package soak replays adversarial workload scenarios through the
// external ingress against a live autopilot-managed fleet while a fault
// injector perturbs it mid-run — SIGKILLs, wedged processes, slow and
// partitioned networks — and continuously asserts the paper's serving
// invariant: no admitted query is ever dropped. Every run is
// deterministic from a seed and renders a recovery-time and tail-latency
// trajectory (BENCH_soak.json) so the invariant ratchets instead of
// regressing silently.
package soak

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kairos/internal/autopilot"
	"kairos/internal/ingress"
	"kairos/internal/obs"
	"kairos/internal/workload"

	"math/rand"
)

// System is the live serving stack a soak run drives: a started
// autopilot (its ingress must have a TCP endpoint) and, optionally, the
// ChaosProvider interposed under it for network-level faults.
type System struct {
	// AP is the started autopilot owning controller, ingress, and
	// provider.
	AP *autopilot.Autopilot
	// Chaos, when the fleet was launched through WrapChaos, unlocks the
	// delay, stall, and partition faults and routes process-level faults
	// through the proxy address translation. Nil is fine for kill/wedge
	// against a bare provider.
	Chaos *ChaosProvider
}

// Config tunes one soak run.
type Config struct {
	// Scenario is the adversarial workload to replay.
	Scenario workload.Scenario
	// Seed makes the replay (arrivals, batches, fault targeting)
	// deterministic.
	Seed int64
	// TimeScale is the wall-clock compression the system runs under;
	// arrivals are paced at AtMS*TimeScale wall milliseconds and
	// latencies divide back out. Zero means 1 (real time).
	TimeScale float64
	// Models round-robins the scenario's queries across these models.
	Models []string
	// Faults schedules the mid-run perturbations.
	Faults []FaultSpec
	// SnapshotEvery paces the streaming invariant checker (default
	// 25ms).
	SnapshotEvery time.Duration
	// BucketMS sizes the latency-trajectory buckets in model
	// milliseconds (default: duration/20).
	BucketMS float64
	// Clients is the number of concurrent ingress TCP connections
	// (default 4).
	Clients int
	// Token is the bearer token the replay clients present at dial
	// time; required when the ingress front door is auth-gated.
	Token string
	// EmptyHold is how long the controller parks a model's queries when
	// a fault takes its last instance, giving the heal time to relaunch
	// (default 30s wall clock; see server.Controller.SetEmptyHold).
	EmptyHold time.Duration
	// ConvergeTimeout bounds the post-replay drain: all admitted queries
	// delivered and the fleet re-converged (default 30s wall clock).
	ConvergeTimeout time.Duration
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() error {
	if len(c.Scenario.Phases) == 0 {
		return fmt.Errorf("soak: empty scenario")
	}
	if len(c.Models) == 0 {
		return fmt.Errorf("soak: no target models")
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 1
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 25 * time.Millisecond
	}
	if c.BucketMS <= 0 {
		c.BucketMS = c.Scenario.DurationMS() / 20
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.EmptyHold <= 0 {
		c.EmptyHold = 30 * time.Second
	}
	if c.ConvergeTimeout <= 0 {
		c.ConvergeTimeout = 30 * time.Second
	}
	return nil
}

// Run replays the scenario against the system, injecting the configured
// faults, and returns the full report. A non-nil error means the run
// could not execute (bad config, unreachable ingress); invariant
// violations do NOT error — they are the report's Violations, so a soak
// harness can always record what happened.
func Run(sys System, cfg Config) (*Report, error) {
	if sys.AP == nil {
		return nil, fmt.Errorf("soak: nil autopilot")
	}
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	ing := sys.AP.Ingress()
	if ing == nil || ing.TCPAddr() == "" {
		return nil, fmt.Errorf("soak: the autopilot has no TCP ingress (use WithIngress)")
	}
	for _, f := range cfg.Faults {
		if err := f.validate(sys.Chaos != nil); err != nil {
			return nil, err
		}
	}
	ctrl := sys.AP.Controller()
	ctrl.SetEmptyHold(cfg.EmptyHold)

	arrivals := cfg.Scenario.Generate(cfg.Seed)
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("soak: scenario %q generated no arrivals", cfg.Scenario.Name)
	}
	durMS := cfg.Scenario.DurationMS()

	clients := make([]*ingress.Client, cfg.Clients)
	for i := range clients {
		c, err := ingress.DialWith(ing.TCPAddr(), ingress.DialOptions{Token: cfg.Token})
		if err != nil {
			for _, prev := range clients[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("soak: dialing ingress: %w", err)
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	rec := newRecorder(cfg.BucketMS)
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed5eed))
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// The streaming checker snapshots the controller for the whole run.
	var checker Checker
	var checkMu sync.Mutex
	stopSnapshots := make(chan struct{})
	snapshotsDone := make(chan struct{})
	go func() {
		defer close(snapshotsDone)
		tick := time.NewTicker(cfg.SnapshotEvery)
		defer tick.Stop()
		for {
			select {
			case <-stopSnapshots:
				return
			case <-tick.C:
				st := ctrl.Stats()
				checkMu.Lock()
				checker.Observe(st)
				checkMu.Unlock()
			}
		}
	}()

	start := time.Now()
	modelMS := func() float64 {
		return float64(time.Since(start)) / float64(time.Millisecond) / cfg.TimeScale
	}

	// Faults fire on wall-clock timers; lifts and recovery measurements
	// are tracked so the drain waits for them.
	var faultWG sync.WaitGroup
	for _, spec := range cfg.Faults {
		spec := spec
		delay := time.Duration(spec.At * durMS * cfg.TimeScale * float64(time.Millisecond))
		faultWG.Add(1)
		timer := time.AfterFunc(delay, func() {
			defer faultWG.Done()
			injectFault(sys, spec, rng, rec, &faultWG, cfg, modelMS, logf)
		})
		defer timer.Stop()
	}

	// Replay: pace the arrivals, submit each through a round-robin
	// ingress client, and record client-observed latency.
	var submitted, admitted, rejected, failed atomic.Int64
	var queryWG sync.WaitGroup
	logf("soak: replaying %s: %d arrivals over %.0fms (x%g wall) with %d faults",
		cfg.Scenario.Name, len(arrivals), durMS, cfg.TimeScale, len(cfg.Faults))
	for i, a := range arrivals {
		due := start.Add(time.Duration(a.AtMS * cfg.TimeScale * float64(time.Millisecond)))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		model := cfg.Models[i%len(cfg.Models)]
		client := clients[i%len(clients)]
		atMS := a.AtMS
		batch := a.Batch
		submitted.Add(1)
		queryWG.Add(1)
		go func() {
			defer queryWG.Done()
			t0 := time.Now()
			rep, err := client.Submit(model, batch)
			switch {
			case err != nil:
				failed.Add(1)
			case rep.Err == ingress.QueueFullMsg, rep.Err == ingress.RateLimitedMsg:
				// Both are pre-admission turn-aways: the query never
				// entered the system, so it is rejected, not dropped.
				rejected.Add(1)
			case rep.Err != "":
				admitted.Add(1)
				failed.Add(1)
			default:
				admitted.Add(1)
				rec.observe(atMS, float64(time.Since(t0))/float64(time.Millisecond)/cfg.TimeScale)
			}
		}()
	}
	queryWG.Wait()
	faultWG.Wait()

	// Drain: every admitted query delivered, queues empty, fleet healed.
	deadline := time.Now().Add(cfg.ConvergeTimeout)
	for time.Now().Before(deadline) {
		st := ctrl.Stats()
		_, _, _, _, _, pending := sys.AP.FaultState()
		if !pending && st.Waiting == 0 && st.Completed+st.Failed == st.Submitted {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	close(stopSnapshots)
	<-snapshotsDone
	_, _, _, _, _, pending := sys.AP.FaultState()
	checkMu.Lock()
	// Anything still outstanding after the drain is a stuck query; name
	// each one (trace ID, last stage) before the aggregate checks run.
	if outstanding := ctrl.OutstandingQueries(); len(outstanding) > 0 {
		checker.NameOutstanding(outstanding)
	}
	noticed, drained, replanned, deadlineDeaths := sys.AP.PreemptState()
	checker.CheckPreemptions(noticed, drained, replanned, deadlineDeaths)
	violations := checker.Finalize(ctrl.Stats(), pending)
	checkMu.Unlock()

	report := &Report{
		Scenario:     cfg.Scenario.Name,
		Seed:         cfg.Seed,
		DurationMS:   durMS,
		TimeScale:    cfg.TimeScale,
		Submitted:    submitted.Load(),
		Admitted:     admitted.Load(),
		Rejected:     rejected.Load(),
		Failed:       failed.Load(),
		PlanCost:     sys.AP.Status().Plan.Cost,
		Faults:       rec.faultEvents(),
		Trajectory:   rec.trajectory(),
		StageLatency: stageLatency(ctrl.Obs(), cfg.TimeScale),
		Violations:   violations,
	}
	if report.Admitted > 0 {
		report.CostPer1KQueries = report.PlanCost * (durMS / 3.6e6) / float64(report.Admitted) * 1000
	}
	if report.Failed > 0 {
		report.Violations = append(report.Violations,
			fmt.Sprintf("client: %d admitted queries returned errors", report.Failed))
	}
	for _, ev := range report.Faults {
		if ev.Err != "" {
			report.Violations = append(report.Violations,
				fmt.Sprintf("inject: %s at %s failed: %s", ev.Kind, ev.Target, ev.Err))
		} else if FaultKind(ev.Kind).capacityLosing() && ev.RecoveryMS < 0 {
			report.Violations = append(report.Violations,
				fmt.Sprintf("recovery: %s at %s never re-converged", ev.Kind, ev.Target))
		} else if FaultKind(ev.Kind) == FaultPreempt && ev.RecoveryMS < 0 {
			report.Violations = append(report.Violations,
				fmt.Sprintf("recovery: preempt at %s was never answered by a replan", ev.Target))
		}
	}
	logf("soak: %s done: submitted=%d admitted=%d rejected=%d failed=%d violations=%d",
		cfg.Scenario.Name, report.Submitted, report.Admitted, report.Rejected,
		report.Failed, len(report.Violations))
	return report, nil
}

// stageLatency reads the flight recorder's per-stage histograms into
// the report's breakdown, converting wall nanoseconds to model
// milliseconds. Stages that recorded nothing are omitted.
func stageLatency(reg *obs.Registry, timeScale float64) map[string]map[string]StageQuantiles {
	out := make(map[string]map[string]StageQuantiles)
	toMS := func(d time.Duration) float64 {
		return float64(d) / float64(time.Millisecond) / timeScale
	}
	for _, name := range reg.Models() {
		mo := reg.Model(name)
		stages := make(map[string]StageQuantiles)
		for _, st := range obs.Stages() {
			snap := mo.StageSnapshot(st)
			if snap.Count == 0 {
				continue
			}
			stages[st.String()] = StageQuantiles{
				Count:  snap.Count,
				P50MS:  toMS(snap.Quantile(0.50)),
				P99MS:  toMS(snap.Quantile(0.99)),
				P999MS: toMS(snap.Quantile(0.999)),
			}
		}
		if len(stages) > 0 {
			out[name] = stages
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// injectFault picks a live target and applies one fault spec, recording
// the event and (for capacity-losing faults) measuring recovery.
func injectFault(sys System, spec FaultSpec, rng *rand.Rand, rec *recorder,
	faultWG *sync.WaitGroup, cfg Config, modelMS func() float64, logf func(string, ...any)) {
	ctrl := sys.AP.Controller()
	st := ctrl.Stats()
	type cand struct{ addr, model string }
	var cands []cand
	for _, is := range st.Instances {
		if spec.Model != "" && is.Model != spec.Model {
			continue
		}
		if spec.Kind == FaultPreempt && is.Draining {
			// Already noticed (or being removed): a second notice for the
			// same instance would have nothing left to drain.
			continue
		}
		cands = append(cands, cand{is.Addr, is.Model})
	}
	ev := FaultEvent{Kind: string(spec.Kind), AtMS: modelMS(), RecoveryMS: -1}
	if len(cands) == 0 {
		ev.Err = "no live instance to target"
		rec.fault(ev)
		return
	}
	pick := cands[rng.Intn(len(cands))]
	ev.Target, ev.Model = pick.addr, pick.model

	_, _, _, _, heals0, _ := sys.AP.FaultState()
	_, _, replanned0, deaths0 := sys.AP.PreemptState()
	t0 := time.Now()
	var err error
	switch spec.Kind {
	case FaultKill:
		if sys.Chaos != nil {
			err = sys.Chaos.Kill(pick.addr)
		} else if k, ok := sys.AP.Provider().(killer); ok {
			err = k.Kill(pick.addr)
		} else {
			err = fmt.Errorf("provider %T cannot kill instances", sys.AP.Provider())
		}
	case FaultWedge:
		if sys.Chaos != nil {
			err = sys.Chaos.Wedge(pick.addr)
		} else if w, ok := sys.AP.Provider().(wedger); ok {
			err = w.Wedge(pick.addr)
		} else {
			err = fmt.Errorf("provider %T cannot wedge instances", sys.AP.Provider())
		}
		if err == nil {
			faultWG.Add(1)
			time.AfterFunc(spec.Duration, func() {
				defer faultWG.Done()
				if sys.Chaos != nil {
					sys.Chaos.Resume(pick.addr)
				} else if w, ok := sys.AP.Provider().(wedger); ok {
					w.Resume(pick.addr)
				}
			})
		}
	case FaultDelay:
		err = sys.Chaos.SetDelay(pick.addr, spec.Delay)
		if err == nil {
			faultWG.Add(1)
			time.AfterFunc(spec.Duration, func() {
				defer faultWG.Done()
				sys.Chaos.SetDelay(pick.addr, 0)
			})
		}
	case FaultStall:
		err = sys.Chaos.SetStall(pick.addr, true)
		if err == nil {
			faultWG.Add(1)
			time.AfterFunc(spec.Duration, func() {
				defer faultWG.Done()
				sys.Chaos.SetStall(pick.addr, false)
			})
		}
	case FaultPartition:
		err = sys.Chaos.Cut(pick.addr)
	case FaultPreempt:
		if sys.Chaos != nil {
			_, err = sys.Chaos.Preempt(pick.addr, spec.Duration)
		} else if pr, ok := sys.AP.Provider().(autopilot.Preempter); ok {
			_, err = pr.Preempt(pick.addr, spec.Duration)
		} else {
			err = fmt.Errorf("provider %T cannot preempt instances", sys.AP.Provider())
		}
	}
	if err != nil {
		ev.Err = err.Error()
		rec.fault(ev)
		logf("soak: inject %s at %s FAILED: %v", spec.Kind, pick.addr, err)
		return
	}
	rec.fault(ev)
	logf("soak: injected %s at %s (%s) t=%.0fms", spec.Kind, pick.addr, pick.model, ev.AtMS)

	if spec.Kind.capacityLosing() {
		// Recovery = the autopilot heals past its pre-fault count with no
		// fault left pending.
		faultWG.Add(1)
		go func() {
			defer faultWG.Done()
			deadline := time.Now().Add(cfg.ConvergeTimeout)
			for time.Now().Before(deadline) {
				_, _, _, _, heals, pending := sys.AP.FaultState()
				if heals > heals0 && !pending {
					rms := float64(time.Since(t0)) / float64(time.Millisecond) / cfg.TimeScale
					rec.setRecovery(pick.addr, rms)
					logf("soak: %s at %s healed in %.0fms", spec.Kind, pick.addr, rms)
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}
	if spec.Kind == FaultPreempt {
		// Recovery = the notice was answered end to end: drained and
		// replanned (notice-to-replanned latency). A preemption the drain
		// lost (died mid-drain) recovers through the heal path instead.
		faultWG.Add(1)
		go func() {
			defer faultWG.Done()
			deadline := time.Now().Add(cfg.ConvergeTimeout)
			for time.Now().Before(deadline) {
				_, _, replanned, deaths := sys.AP.PreemptState()
				if replanned > replanned0 {
					rms := float64(time.Since(t0)) / float64(time.Millisecond) / cfg.TimeScale
					rec.setRecovery(pick.addr, rms)
					logf("soak: preempt at %s drained and replanned in %.0fms", pick.addr, rms)
					return
				}
				if deaths > deaths0 {
					_, _, _, _, heals, pending := sys.AP.FaultState()
					if heals > heals0 && !pending {
						rms := float64(time.Since(t0)) / float64(time.Millisecond) / cfg.TimeScale
						rec.setRecovery(pick.addr, rms)
						logf("soak: preempt at %s died mid-drain; healed in %.0fms", pick.addr, rms)
						return
					}
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}
}
