package soak

import (
	"fmt"
	"sync"
	"time"

	"kairos/internal/autopilot"
)

// ChaosProvider wraps an actuation provider with an interposing TCP
// proxy per instance: the controller dials the proxy, the proxy dials
// the real instance, and the harness perturbs the wire in between —
// delay, stall (transient partition), or cut (hard partition). Launch,
// Stop, Reap, and the process-level chaos surface (Kill/Wedge/Resume)
// all translate proxy addresses back to the wrapped provider's, so the
// autopilot's fault-heal loop works unchanged through the interposition.
type ChaosProvider struct {
	inner autopilot.Provider

	mu      sync.Mutex
	byFront map[string]*chaosEntry // proxy addr -> entry

	// notices forwards the wrapped provider's preemption notices with
	// backend addresses translated to proxy addresses (started lazily by
	// Notices; stopNotices ends the forwarder at Close).
	noticesOnce sync.Once
	notices     chan autopilot.Preemption
	stopNotices chan struct{}
	closeOnce   sync.Once
}

type chaosEntry struct {
	prox    *proxy
	backend string
}

var (
	_ autopilot.Provider  = (*ChaosProvider)(nil)
	_ autopilot.Reaper    = (*ChaosProvider)(nil)
	_ autopilot.Noticer   = (*ChaosProvider)(nil)
	_ autopilot.Preempter = (*ChaosProvider)(nil)
)

// killer and wedger are the process-level chaos capabilities a wrapped
// provider may offer (both fleets kill; only the exec fleet wedges).
type killer interface{ Kill(addr string) error }

type wedger interface {
	Wedge(addr string) error
	Resume(addr string) error
}

// WrapChaos interposes proxies around every instance inner launches.
func WrapChaos(inner autopilot.Provider) *ChaosProvider {
	return &ChaosProvider{
		inner:       inner,
		byFront:     make(map[string]*chaosEntry),
		stopNotices: make(chan struct{}),
	}
}

// Inner returns the wrapped provider.
func (c *ChaosProvider) Inner() autopilot.Provider { return c.inner }

// TimeScale forwards the wrapped provider's time dilation so the
// facade's scale-mismatch check still sees it through the wrapper.
func (c *ChaosProvider) TimeScale() float64 {
	if ts, ok := c.inner.(interface{ TimeScale() float64 }); ok {
		return ts.TimeScale()
	}
	return 1
}

// Launch starts an instance on the wrapped provider and fronts it with a
// fresh proxy; the returned (and controller-dialed) address is the
// proxy's.
func (c *ChaosProvider) Launch(model, typeName string) (string, error) {
	backend, err := c.inner.Launch(model, typeName)
	if err != nil {
		return "", err
	}
	prox, err := newProxy(backend)
	if err != nil {
		c.inner.Stop(backend)
		return "", err
	}
	front := prox.addr()
	c.mu.Lock()
	c.byFront[front] = &chaosEntry{prox: prox, backend: backend}
	c.mu.Unlock()
	return front, nil
}

// lookup resolves a proxy address; the bool reports whether it is one.
func (c *ChaosProvider) lookup(front string) (*chaosEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byFront[front]
	return e, ok
}

// frontOf reverse-resolves a backend address to its proxy address.
func (c *ChaosProvider) frontOf(backend string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for front, e := range c.byFront {
		if e.backend == backend {
			return front, true
		}
	}
	return "", false
}

// forget drops the entry and returns it for teardown.
func (c *ChaosProvider) forget(front string) (*chaosEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byFront[front]
	delete(c.byFront, front)
	return e, ok
}

// Stop tears down the proxy and the instance behind it. Unknown
// addresses pass through to the wrapped provider unchanged.
func (c *ChaosProvider) Stop(front string) error {
	e, ok := c.forget(front)
	if !ok {
		return c.inner.Stop(front)
	}
	e.prox.close()
	return c.inner.Stop(e.backend)
}

// Reap releases a dead instance (implements autopilot.Reaper): the proxy
// closes and the wrapped provider reaps whatever is left of the backend.
func (c *ChaosProvider) Reap(front string) error {
	e, ok := c.forget(front)
	if !ok {
		return nil
	}
	e.prox.close()
	if r, ok := c.inner.(autopilot.Reaper); ok {
		return r.Reap(e.backend)
	}
	c.inner.Stop(e.backend)
	return nil
}

// Addrs lists the controller-facing (proxy) addresses.
func (c *ChaosProvider) Addrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.byFront))
	for front := range c.byFront {
		out = append(out, front)
	}
	return out
}

// Close tears down every proxy and the wrapped provider.
func (c *ChaosProvider) Close() error {
	c.closeOnce.Do(func() { close(c.stopNotices) })
	c.mu.Lock()
	entries := c.byFront
	c.byFront = make(map[string]*chaosEntry)
	c.mu.Unlock()
	for _, e := range entries {
		e.prox.close()
	}
	return c.inner.Close()
}

// Notices implements autopilot.Noticer through the proxy translation:
// the wrapped provider announces revocations by backend address, and the
// control plane only knows the proxy addresses it dialed, so a forwarder
// rewrites each notice on the way through. Returns nil (never fires)
// when the wrapped provider delivers no notices.
func (c *ChaosProvider) Notices() <-chan autopilot.Preemption {
	n, ok := c.inner.(autopilot.Noticer)
	if !ok {
		return nil
	}
	inner := n.Notices()
	if inner == nil {
		return nil
	}
	c.noticesOnce.Do(func() {
		c.notices = make(chan autopilot.Preemption, 64)
		go func() {
			for {
				select {
				case <-c.stopNotices:
					return
				case p := <-inner:
					if front, ok := c.frontOf(p.Addr); ok {
						p.Addr = front
					}
					select {
					case c.notices <- p:
					default:
						// Mirror the providers: a lost notice still dies at
						// the deadline and surfaces as a plain death.
					}
				}
			}
		}()
	})
	return c.notices
}

// Preempt implements autopilot.Preempter through the proxy translation:
// the revocation (notice now, hard kill at the deadline) lands on the
// backend instance behind the proxy at front.
func (c *ChaosProvider) Preempt(front string, notice time.Duration) (time.Time, error) {
	e, ok := c.lookup(front)
	if !ok {
		return time.Time{}, fmt.Errorf("soak: no proxied instance at %s", front)
	}
	p, ok := c.inner.(autopilot.Preempter)
	if !ok {
		return time.Time{}, fmt.Errorf("soak: provider %T cannot preempt instances", c.inner)
	}
	return p.Preempt(e.backend, notice)
}

// SetDelay adds d of one-way latency per forwarded chunk on the
// instance's wire; 0 restores the clean network.
func (c *ChaosProvider) SetDelay(front string, d time.Duration) error {
	e, ok := c.lookup(front)
	if !ok {
		return fmt.Errorf("soak: no proxied instance at %s", front)
	}
	e.prox.setDelay(d)
	return nil
}

// SetStall pauses (true) or resumes (false) all traffic to and from the
// instance without dropping a byte — a transient network partition.
func (c *ChaosProvider) SetStall(front string, on bool) error {
	e, ok := c.lookup(front)
	if !ok {
		return fmt.Errorf("soak: no proxied instance at %s", front)
	}
	e.prox.setStall(on)
	return nil
}

// Cut hard-partitions the instance: live connections reset, new ones
// refused. The controller evicts it and the fault path reaps the
// healthy-but-unreachable backend, exactly as a production fleet manager
// treats a machine it can no longer talk to.
func (c *ChaosProvider) Cut(front string) error {
	e, ok := c.lookup(front)
	if !ok {
		return fmt.Errorf("soak: no proxied instance at %s", front)
	}
	e.prox.cut()
	return nil
}

// Kill SIGKILLs (or force-closes) the instance behind the proxy.
func (c *ChaosProvider) Kill(front string) error {
	e, ok := c.lookup(front)
	if !ok {
		return fmt.Errorf("soak: no proxied instance at %s", front)
	}
	k, ok := c.inner.(killer)
	if !ok {
		return fmt.Errorf("soak: provider %T cannot kill instances", c.inner)
	}
	return k.Kill(e.backend)
}

// Wedge SIGSTOPs the instance behind the proxy.
func (c *ChaosProvider) Wedge(front string) error {
	e, ok := c.lookup(front)
	if !ok {
		return fmt.Errorf("soak: no proxied instance at %s", front)
	}
	w, ok := c.inner.(wedger)
	if !ok {
		return fmt.Errorf("soak: provider %T cannot wedge instances", c.inner)
	}
	return w.Wedge(e.backend)
}

// Resume SIGCONTs a wedged instance.
func (c *ChaosProvider) Resume(front string) error {
	e, ok := c.lookup(front)
	if !ok {
		return fmt.Errorf("soak: no proxied instance at %s", front)
	}
	w, ok := c.inner.(wedger)
	if !ok {
		return fmt.Errorf("soak: provider %T cannot wedge instances", c.inner)
	}
	return w.Resume(e.backend)
}
