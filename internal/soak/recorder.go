package soak

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// FaultEvent is one injected fault as it happened, with the measured
// recovery. Times are model milliseconds (wall clock divided by the
// run's time scale), comparable across time-compressed runs.
type FaultEvent struct {
	// Kind names the fault (see FaultKind).
	Kind string `json:"kind"`
	// Target is the controller-facing address the fault hit.
	Target string `json:"target"`
	// Model is the model the target was serving.
	Model string `json:"model"`
	// AtMS is the injection time since replay start.
	AtMS float64 `json:"at_ms"`
	// RecoveryMS is how long the fleet took to re-converge (relaunch +
	// re-actuate) after a capacity-losing fault; -1 when the fault heals
	// by lifting (wedge, delay, stall) or recovery never completed.
	RecoveryMS float64 `json:"recovery_ms"`
	// Err records an injection that itself failed (e.g. capability
	// missing); empty on success.
	Err string `json:"err,omitempty"`
}

// TrajectoryPoint is one time bucket of the tail-latency trajectory.
type TrajectoryPoint struct {
	// TMS is the bucket's start time in model milliseconds.
	TMS float64 `json:"t_ms"`
	// Queries counts completions recorded in the bucket.
	Queries int `json:"queries"`
	// P50MS, P99MS, and P999MS are the bucket's latency percentiles in
	// model milliseconds.
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
}

// Report is one scenario's soak outcome — the unit of BENCH_soak.json.
type Report struct {
	// Scenario and Seed reproduce the run bit for bit.
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	// DurationMS is the scenario length in model milliseconds; TimeScale
	// is the wall-clock compression it replayed under.
	DurationMS float64 `json:"duration_ms"`
	TimeScale  float64 `json:"time_scale"`
	// Submitted counts queries the replay offered; Admitted the ones the
	// ingress accepted; Rejected the backpressured remainder. Failed
	// counts admitted queries that did not complete — the soak invariant
	// demands it stay zero.
	Submitted int64 `json:"submitted"`
	Admitted  int64 `json:"admitted"`
	Rejected  int64 `json:"rejected"`
	Failed    int64 `json:"failed"`
	// PlanCost is the fleet plan's $/hr at quiesce. With a spot market
	// (-spot-discount) this is the discounted bill, so a run at the same
	// budget over the plain on-demand pool makes the saving directly
	// comparable.
	PlanCost float64 `json:"plan_cost_per_hour"`
	// CostPer1KQueries is dollars per thousand admitted queries (plan
	// cost x model-time duration / admitted) — the $/query economics
	// injected preemptions must not break.
	CostPer1KQueries float64 `json:"cost_per_1k_queries"`
	// Faults lists every injected fault with its measured recovery.
	Faults []FaultEvent `json:"faults"`
	// Trajectory is the tail-latency time series across the run.
	Trajectory []TrajectoryPoint `json:"trajectory"`
	// StageLatency breaks the run's serving latency down by lifecycle
	// stage (model → stage → quantiles), read off the controller's
	// flight-recorder histograms at quiesce. Times are model
	// milliseconds, comparable across time-compressed runs.
	StageLatency map[string]map[string]StageQuantiles `json:"stage_latency,omitempty"`
	// Violations lists every invariant violation; empty means the run
	// upheld the zero-dropped-queries ratchet.
	Violations []string `json:"violations"`
}

// StageQuantiles summarizes one lifecycle stage's latency histogram in
// model milliseconds.
type StageQuantiles struct {
	// Count is how many samples the stage recorded.
	Count uint64 `json:"count"`
	// P50MS/P99MS/P999MS are log-bucket quantile estimates (≤√2
	// multiplicative error; see internal/obs).
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
}

// Passed reports whether the run upheld every invariant.
func (r *Report) Passed() bool { return len(r.Violations) == 0 }

// Bench is the BENCH_soak.json document: one soak campaign.
type Bench struct {
	// Seed is the campaign's base seed (each scenario derives its own).
	Seed int64 `json:"seed"`
	// TimeScale is the wall-clock compression the campaign ran under.
	TimeScale float64 `json:"time_scale"`
	// Scenarios holds one report per scenario run.
	Scenarios []Report `json:"scenarios"`
}

// Passed reports whether every scenario upheld every invariant.
func (b *Bench) Passed() bool {
	for i := range b.Scenarios {
		if !b.Scenarios[i].Passed() {
			return false
		}
	}
	return true
}

// WriteJSON renders the document, indented for the repo artifact.
func (b *Bench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// recorder accumulates per-query completions into fixed time buckets and
// renders the percentile trajectory. Concurrency-safe: the replay's
// per-query goroutines feed it directly.
type recorder struct {
	bucketMS float64

	mu      sync.Mutex
	buckets map[int][]float64 // bucket index -> completion latencies (model ms)
	faults  []FaultEvent
}

func newRecorder(bucketMS float64) *recorder {
	if bucketMS <= 0 {
		bucketMS = 1000
	}
	return &recorder{bucketMS: bucketMS, buckets: make(map[int][]float64)}
}

// observe records one completed query: submitted atMS into the run,
// served in latencyMS (both model milliseconds).
func (r *recorder) observe(atMS, latencyMS float64) {
	idx := int(atMS / r.bucketMS)
	if idx < 0 {
		idx = 0
	}
	r.mu.Lock()
	r.buckets[idx] = append(r.buckets[idx], latencyMS)
	r.mu.Unlock()
}

// fault records one injected fault.
func (r *recorder) fault(ev FaultEvent) {
	r.mu.Lock()
	r.faults = append(r.faults, ev)
	r.mu.Unlock()
}

// setRecovery stamps the recovery time onto the most recent fault at
// target that has none yet.
func (r *recorder) setRecovery(target string, recoveryMS float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.faults) - 1; i >= 0; i-- {
		if r.faults[i].Target == target && r.faults[i].RecoveryMS == -1 && r.faults[i].Err == "" {
			r.faults[i].RecoveryMS = recoveryMS
			return
		}
	}
}

// trajectory renders the bucketed percentile series in time order.
func (r *recorder) trajectory() []TrajectoryPoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	idxs := make([]int, 0, len(r.buckets))
	for idx := range r.buckets {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	out := make([]TrajectoryPoint, 0, len(idxs))
	for _, idx := range idxs {
		lats := r.buckets[idx]
		sort.Float64s(lats)
		out = append(out, TrajectoryPoint{
			TMS:     float64(idx) * r.bucketMS,
			Queries: len(lats),
			P50MS:   percentile(lats, 0.50),
			P99MS:   percentile(lats, 0.99),
			P999MS:  percentile(lats, 0.999),
		})
	}
	return out
}

// faultEvents returns the recorded faults in injection order.
func (r *recorder) faultEvents() []FaultEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FaultEvent, len(r.faults))
	copy(out, r.faults)
	return out
}

// percentile reads the p-quantile from an ascending-sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
