package soak

import (
	"fmt"

	"kairos/internal/server"
)

// Checker streams controller snapshots and asserts the soak invariants
// continuously — not only at the end, so a transiently violated
// conservation law is caught even if later counters paper over it:
//
//   - counters are monotone: submitted, completed, and failed never go
//     backwards, globally or per ingress model;
//   - conservation: completed + failed ≤ submitted in every snapshot —
//     a delivered outcome must correspond to an admitted query;
//   - at quiesce (Finalize): every admitted query was delivered exactly
//     once with no failures (completed == submitted, failed == 0, empty
//     queues), and the fleet re-converged after its last fault.
//
// Violations accumulate; a soak run reports them all rather than dying
// on the first.
type Checker struct {
	prev       server.Stats
	seen       bool
	violations []string
}

// violatef records one violation.
func (c *Checker) violatef(format string, args ...any) {
	c.violations = append(c.violations, fmt.Sprintf(format, args...))
}

// Observe checks one snapshot against the streaming invariants.
func (c *Checker) Observe(st server.Stats) {
	if st.Completed+st.Failed > st.Submitted {
		c.violatef("conservation: completed %d + failed %d > submitted %d",
			st.Completed, st.Failed, st.Submitted)
	}
	for model, is := range st.Ingress {
		if is.Completed+is.Failed > is.Submitted {
			c.violatef("conservation[%s]: ingress completed %d + failed %d > submitted %d",
				model, is.Completed, is.Failed, is.Submitted)
		}
		if is.Queue < 0 {
			c.violatef("ingress[%s]: negative queue depth %d", model, is.Queue)
		}
	}
	if c.seen {
		if st.Submitted < c.prev.Submitted {
			c.violatef("monotonicity: submitted went %d -> %d", c.prev.Submitted, st.Submitted)
		}
		if st.Completed < c.prev.Completed {
			c.violatef("monotonicity: completed went %d -> %d", c.prev.Completed, st.Completed)
		}
		if st.Failed < c.prev.Failed {
			c.violatef("monotonicity: failed went %d -> %d", c.prev.Failed, st.Failed)
		}
		for model, is := range st.Ingress {
			was, ok := c.prev.Ingress[model]
			if !ok {
				continue
			}
			if is.Submitted < was.Submitted || is.Completed < was.Completed || is.Failed < was.Failed {
				c.violatef("monotonicity[%s]: ingress counters went backwards (%+v -> %+v)",
					model, was, is)
			}
		}
	}
	c.prev, c.seen = st, true
}

// Finalize checks the quiesced end state: the load has stopped, every
// in-flight query has had time to drain, and faultPending reports
// whether the autopilot still owes the fleet a heal. It returns the full
// violation list (streaming plus final).
func (c *Checker) Finalize(st server.Stats, faultPending bool) []string {
	c.Observe(st)
	if st.Failed != 0 {
		c.violatef("dropped: %d admitted queries failed", st.Failed)
	}
	if st.Completed != st.Submitted {
		c.violatef("dropped: %d admitted queries never delivered (submitted %d, completed %d)",
			st.Submitted-st.Completed-st.Failed, st.Submitted, st.Completed)
	}
	if st.Waiting != 0 {
		c.violatef("quiesce: %d queries still waiting after drain", st.Waiting)
	}
	for model, is := range st.Ingress {
		if is.Failed != 0 {
			c.violatef("dropped[%s]: %d ingress-admitted queries failed", model, is.Failed)
		}
		if is.Completed != is.Submitted {
			c.violatef("dropped[%s]: ingress submitted %d but completed %d", model, is.Submitted, is.Completed)
		}
		if is.Queue != 0 {
			c.violatef("quiesce[%s]: ingress queue still holds %d", model, is.Queue)
		}
	}
	if faultPending {
		c.violatef("convergence: fleet did not re-converge after its last fault")
	}
	return c.Violations()
}

// CheckPreemptions asserts the drain-ahead-of-death invariant over the
// autopilot's revocation bookkeeping: a noticed preemption must never
// surface as an instance-death fault (the drain must win the race
// against the revocation deadline), and every notice must have finished
// its drain by quiesce.
func (c *Checker) CheckPreemptions(noticed, drained, replanned, deadlineDeaths int64) {
	if deadlineDeaths > 0 {
		c.violatef("preempt: %d of %d noticed preemptions surfaced as instance deaths (drain lost the race)",
			deadlineDeaths, noticed)
	}
	if drained+deadlineDeaths < noticed {
		c.violatef("preempt: %d notices but only %d drained by quiesce", noticed, drained)
	}
	if replanned < drained {
		c.violatef("preempt: %d drained preemptions but only %d answered by a replan", drained, replanned)
	}
}

// NameOutstanding turns a controller in-flight snapshot into named
// violations: a zero-drop failure then points at the exact stuck query
// — its trace ID, last recorded lifecycle stage, and where it sits —
// instead of only an aggregate counter mismatch. Call it at quiesce,
// when anything still outstanding is by definition stuck.
func (c *Checker) NameOutstanding(out []server.OutstandingQuery) {
	for _, q := range out {
		where := q.Stage
		if q.Instance != "" {
			where += " to " + q.Instance
		}
		traced := ""
		if q.Traced {
			traced = "; traced, see /tracez"
		}
		c.violatef("stuck[%s]: query %d (batch %d) undelivered after %.0fms, last stage %s%s",
			q.Model, q.ID, q.Batch, q.AgeMS, where, traced)
	}
}

// Violations returns every violation recorded so far.
func (c *Checker) Violations() []string {
	out := make([]string, len(c.violations))
	copy(out, c.violations)
	return out
}
