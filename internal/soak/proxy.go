package soak

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// proxy interposes one TCP backend: every controller connection to the
// instance flows through it, so the harness can perturb the wire without
// touching either endpoint. Three knobs:
//
//   - delay: each forwarded chunk sleeps first (slow network);
//   - stall: forwarding pauses entirely — bytes stay queued in the
//     kernel, nothing is lost, and lifting the stall resumes the stream
//     intact (a transient partition as TCP actually experiences it);
//   - cut: every live connection closes and new ones are refused — the
//     controller sees the instance die even though the backend is healthy
//     (a hard partition; the fault path reaps the unreachable instance).
type proxy struct {
	backend string
	ln      net.Listener

	delayNS atomic.Int64
	stalled atomic.Bool
	isCut   atomic.Bool

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func newProxy(backend string) (*proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &proxy{backend: backend, ln: ln, conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	return p, nil
}

// addr is the controller-facing address.
func (p *proxy) addr() string { return p.ln.Addr().String() }

func (p *proxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.isCut.Load() {
			conn.Close()
			continue
		}
		go p.serve(conn)
	}
}

func (p *proxy) serve(client net.Conn) {
	backend, err := net.Dial("tcp", p.backend)
	if err != nil {
		client.Close()
		return
	}
	if !p.track(client) || !p.track(backend) {
		client.Close()
		backend.Close()
		return
	}
	done := make(chan struct{}, 2)
	go p.pipe(backend, client, done)
	go p.pipe(client, backend, done)
	<-done // either direction failing tears the pair down
	client.Close()
	backend.Close()
	<-done
	p.untrack(client)
	p.untrack(backend)
}

// pipe forwards src to dst, honoring the delay and stall knobs. A stall
// pauses before the read, so in-flight bytes back up in the kernel
// instead of being dropped mid-frame.
func (p *proxy) pipe(dst, src net.Conn, done chan<- struct{}) {
	defer func() { done <- struct{}{} }()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			// The stall gate sits between read and write: a chunk read
			// just as the stall lands is held in buf and forwarded after
			// the lift, never dropped.
			for p.stalled.Load() {
				time.Sleep(2 * time.Millisecond)
				if p.isCut.Load() {
					return
				}
			}
			if d := p.delayNS.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

func (p *proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// setDelay adds d of one-way latency to every forwarded chunk.
func (p *proxy) setDelay(d time.Duration) { p.delayNS.Store(int64(d)) }

// setStall pauses (true) or resumes (false) forwarding in both directions.
func (p *proxy) setStall(on bool) { p.stalled.Store(on) }

// cut force-closes every live connection and refuses new ones.
func (p *proxy) cut() {
	p.isCut.Store(true)
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// close tears the proxy down entirely.
func (p *proxy) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}
