package soak

import (
	"strings"
	"testing"

	"kairos/internal/server"
)

// snap builds a controller snapshot with one ingress model section.
func snap(submitted, completed, failed int64, waiting int, ing *server.IngressStats) server.Stats {
	st := server.Stats{
		Submitted: submitted,
		Completed: completed,
		Failed:    failed,
		Waiting:   waiting,
	}
	if ing != nil {
		st.Ingress = map[string]server.IngressStats{"NCF": *ing}
	}
	return st
}

func TestCheckerTable(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name         string
		stream       []server.Stats
		final        server.Stats
		faultPending bool
		want         []string // substrings that must appear, in any order
	}{
		{
			name: "clean stream",
			stream: []server.Stats{
				snap(10, 4, 0, 6, &server.IngressStats{Submitted: 10, Completed: 4, Queue: 6}),
				snap(20, 15, 0, 5, &server.IngressStats{Submitted: 20, Completed: 15, Queue: 5}),
			},
			final: snap(20, 20, 0, 0, &server.IngressStats{Submitted: 20, Completed: 20}),
		},
		{
			name: "clean stream with backpressure",
			// Rejections are not drops: the ingress NACKed them before
			// admission, so they never enter the conservation law.
			stream: []server.Stats{
				snap(8, 3, 0, 5, &server.IngressStats{Submitted: 8, Rejected: 4, Completed: 3, Queue: 5}),
			},
			final: snap(8, 8, 0, 0, &server.IngressStats{Submitted: 8, Rejected: 4, Completed: 8}),
		},
		{
			name: "dropped admitted query",
			stream: []server.Stats{
				snap(10, 5, 0, 5, &server.IngressStats{Submitted: 10, Completed: 5, Queue: 5}),
			},
			final: snap(10, 9, 0, 0, &server.IngressStats{Submitted: 10, Completed: 9}),
			want:  []string{"dropped: 1 admitted queries never delivered", "dropped[NCF]: ingress submitted 10 but completed 9"},
		},
		{
			name: "admitted query failed",
			stream: []server.Stats{
				snap(10, 5, 0, 5, nil),
			},
			final: snap(10, 9, 1, 0, &server.IngressStats{Submitted: 10, Completed: 9, Failed: 1}),
			want:  []string{"dropped: 1 admitted queries failed", "dropped[NCF]: 1 ingress-admitted queries failed"},
		},
		{
			name: "conservation violated mid-stream",
			// completed+failed briefly exceeds submitted: a phantom
			// delivery. The final snapshot looks clean — only the
			// streaming checker can catch it.
			stream: []server.Stats{
				snap(10, 9, 2, 0, nil),
			},
			final: snap(12, 12, 0, 0, nil),
			want:  []string{"conservation: completed 9 + failed 2 > submitted 10"},
		},
		{
			name: "counter regression",
			stream: []server.Stats{
				snap(10, 8, 0, 2, nil),
				snap(9, 8, 0, 1, nil),
			},
			final: snap(10, 10, 0, 0, nil),
			want:  []string{"monotonicity: submitted went 10 -> 9"},
		},
		{
			name: "ingress counter regression",
			stream: []server.Stats{
				snap(10, 8, 0, 2, &server.IngressStats{Submitted: 10, Completed: 8, Queue: 2}),
				snap(10, 9, 0, 1, &server.IngressStats{Submitted: 10, Completed: 7, Queue: 1}),
			},
			final: snap(10, 10, 0, 0, &server.IngressStats{Submitted: 10, Completed: 10}),
			want:  []string{"monotonicity[NCF]"},
		},
		{
			name: "non-convergence after fault",
			stream: []server.Stats{
				snap(10, 10, 0, 0, nil),
			},
			final:        snap(10, 10, 0, 0, nil),
			faultPending: true,
			want:         []string{"convergence: fleet did not re-converge"},
		},
		{
			name: "stuck queue at quiesce",
			stream: []server.Stats{
				snap(10, 6, 0, 4, &server.IngressStats{Submitted: 10, Completed: 6, Queue: 4}),
			},
			final: snap(10, 8, 0, 2, &server.IngressStats{Submitted: 10, Completed: 8, Queue: 2}),
			want: []string{
				"quiesce: 2 queries still waiting",
				"quiesce[NCF]: ingress queue still holds 2",
				"dropped: 2 admitted queries never delivered",
			},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var c Checker
			for _, st := range tc.stream {
				c.Observe(st)
			}
			got := c.Finalize(tc.final, tc.faultPending)
			if len(tc.want) == 0 {
				if len(got) != 0 {
					t.Fatalf("clean run reported violations: %v", got)
				}
				return
			}
			joined := strings.Join(got, "\n")
			for _, want := range tc.want {
				if !strings.Contains(joined, want) {
					t.Errorf("missing violation %q in:\n%s", want, joined)
				}
			}
		})
	}
}

func TestCheckerViolationsAccumulate(t *testing.T) {
	t.Parallel()
	var c Checker
	c.Observe(snap(10, 9, 2, 0, nil)) // conservation
	c.Observe(snap(5, 9, 2, 0, nil))  // regression + conservation again
	if n := len(c.Violations()); n < 3 {
		t.Fatalf("expected accumulated violations, got %d: %v", n, c.Violations())
	}
	// Violations returns a copy.
	v := c.Violations()
	v[0] = "mutated"
	if c.Violations()[0] == "mutated" {
		t.Fatal("Violations exposed internal state")
	}
}

func TestCheckerNamesOutstandingQueries(t *testing.T) {
	t.Parallel()
	var c Checker
	c.NameOutstanding([]server.OutstandingQuery{
		{Model: "NCF", ID: 42, Batch: 100, Stage: "queued", AgeMS: 350, Traced: true},
		{Model: "DRN", ID: 7, Batch: 5, Stage: "dispatched", Instance: "g4dn.xlarge", AgeMS: 120},
	})
	got := strings.Join(c.Violations(), "\n")
	for _, want := range []string{
		"stuck[NCF]: query 42 (batch 100) undelivered after 350ms, last stage queued; traced, see /tracez",
		"stuck[DRN]: query 7 (batch 5) undelivered after 120ms, last stage dispatched to g4dn.xlarge",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing violation %q in:\n%s", want, got)
		}
	}
}
