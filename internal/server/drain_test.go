package server

import (
	"net"
	"strings"
	"testing"
	"time"

	"kairos/internal/cloud"
	"kairos/internal/models"
)

// TestInstanceServerShutdownDrains: Shutdown must stop accepting new
// connections but serve every fully-received request — including ones
// queued behind a request that is mid-service when the drain starts —
// before the connection goes away. This is what lets kairosd honor
// SIGTERM without dropping queries (exec actuation provider).
func TestInstanceServerShutdownDrains(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	typeName := cloud.R5nLarge.Name
	const batch = 200
	// Scale so one query takes ~80ms of real time: long enough that the
	// drain provably overlaps an executing query.
	scale := 80 / m.Latency(typeName, batch)
	s, err := NewInstanceServer(typeName, m, scale)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello Hello
	if err := ReadFrame(conn, &hello); err != nil {
		t.Fatal(err)
	}
	// Legacy JSON controller: two requests back-to-back, so the second is
	// sitting fully received in the server's read buffer while the first
	// executes.
	if err := WriteFrame(conn, Request{ID: 1, Batch: batch}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, Request{ID: 2, Batch: batch}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let request 1 start executing

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(5 * time.Second) }()

	for want := int64(1); want <= 2; want++ {
		var rep Reply
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if err := ReadFrame(conn, &rep); err != nil {
			t.Fatalf("reply %d lost across the drain: %v", want, err)
		}
		if rep.ID != want || rep.Err != "" {
			t.Fatalf("reply %d = %+v", want, rep)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The drained connection is closed by the server.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var rep Reply
	if err := ReadFrame(conn, &rep); err == nil {
		t.Fatal("connection must close after the drain")
	}
	// Nothing new can connect.
	if c, err := net.DialTimeout("tcp", addr, 250*time.Millisecond); err == nil {
		c.Close()
		t.Fatal("listener must refuse connections after Shutdown")
	}
	// Close after Shutdown is a clean no-op.
	if err := s.Close(); err != nil {
		t.Fatalf("close after shutdown: %v", err)
	}
}

// TestInstanceServerShutdownIdleConn: an idle connection (no pending
// request) drains immediately — the deadline sweep pops its blocked read
// and the server exits cleanly within the timeout.
func TestInstanceServerShutdownIdleConn(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	s, err := NewInstanceServer(cloud.R5nLarge.Name, m, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello Hello
	if err := ReadFrame(conn, &hello); err != nil {
		t.Fatal(err)
	}
	// An idle connection (no pending request) drains immediately: the
	// deadline sweep pops its blocked read and the server exits cleanly.
	if err := s.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("idle-conn drain: %v", err)
	}
}

// TestInstanceServerShutdownTimeoutForceCloses: a drain that cannot
// finish within the timeout (a query still executing) is cut short — the
// lingering connection is force-closed, Shutdown still returns (never
// hangs), and it reports the exceeded drain.
func TestInstanceServerShutdownTimeoutForceCloses(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	typeName := cloud.R5nLarge.Name
	const batch = 200
	// One query takes ~500ms; the drain timeout below is far shorter.
	scale := 500 / m.Latency(typeName, batch)
	s, err := NewInstanceServer(typeName, m, scale)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello Hello
	if err := ReadFrame(conn, &hello); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, Request{ID: 1, Batch: batch}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // the query is now executing

	start := time.Now()
	err = s.Shutdown(50 * time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "drain exceeded") {
		t.Fatalf("timed-out drain must be reported: %v", err)
	}
	// The executing query still finishes internally (service is not
	// interruptible), but its connection was force-closed at the timeout
	// so the drain is cut to roughly the one in-flight service — Shutdown
	// reports the exceeded drain and returns instead of hanging on a
	// connection that would otherwise keep reading.
	if elapsed := time.Since(start); elapsed >= 5*time.Second {
		t.Fatalf("shutdown took %v; the force-close backstop did not bound the drain", elapsed)
	}
	// The client sees the cut connection, not a reply.
	conn.SetReadDeadline(time.Now().Add(time.Second))
	var rep Reply
	if err := ReadFrame(conn, &rep); err == nil {
		t.Fatalf("force-closed connection still delivered %+v", rep)
	}
}
