package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"kairos/internal/cloud"
	"kairos/internal/models"
)

// TestControllerStressMultiModel hammers three model groups with
// concurrent Submit, AddInstance, RemoveInstance, and Stats under -race:
// the per-group sharding must keep the accounting invariant
// completed + failed <= submitted in every snapshot, drop no query, and
// never tear while every shard churns at once.
func TestControllerStressMultiModel(t *testing.T) {
	t.Parallel()
	names := []string{"NCF", "MT-WND", "WND"}
	groups := make(map[string]GroupSpec, len(names))
	var addrs []string
	mods := make(map[string]models.Model, len(names))
	for _, name := range names {
		m := models.MustByName(name)
		mods[name] = m
		groups[name] = GroupSpec{Policy: kairosPolicy(m, []string{cloud.G4dnXlarge.Name, cloud.R5nLarge.Name}), Predict: m.Latency}
		for _, tn := range []string{cloud.G4dnXlarge.Name, cloud.R5nLarge.Name} {
			addrs = append(addrs, startModelServer(t, m, tn, 1).Addr())
		}
	}
	ctrl, err := NewMultiController(groups, 1, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	const (
		submittersPerModel = 3
		perWorker          = 25
		churnRounds        = 4
	)
	var wg sync.WaitGroup
	errc := make(chan error, len(names)*(submittersPerModel*perWorker+churnRounds)+4)

	// Churn servers are started here, on the test goroutine: t.Fatal is
	// not legal from spawned goroutines, so the churners only dial/drain.
	churnAddrs := make(map[string][]string, len(names))
	for _, name := range names {
		for i := 0; i < churnRounds; i++ {
			churnAddrs[name] = append(churnAddrs[name], startModelServer(t, mods[name], cloud.R5nLarge.Name, 1).Addr())
		}
	}

	for _, name := range names {
		for w := 0; w < submittersPerModel; w++ {
			wg.Add(1)
			go func(model string, w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					if res := ctrl.SubmitWait(model, 10+(w*perWorker+i)%150); res.Err != nil {
						errc <- fmt.Errorf("%s: %w", model, res.Err)
						return
					}
				}
			}(name, w)
		}
		// One churner per model: add an r5n, then drain one back out.
		wg.Add(1)
		go func(model string) {
			defer wg.Done()
			for _, addr := range churnAddrs[model] {
				if _, err := ctrl.AddInstance(addr); err != nil {
					errc <- err
					return
				}
				if _, err := ctrl.RemoveInstance(model, cloud.R5nLarge.Name); err != nil {
					errc <- err
					return
				}
			}
		}(name)
	}
	// Observers: per-model and aggregate accounting must never tear.
	stop := make(chan struct{})
	observerDone := make(chan struct{})
	go func() {
		defer close(observerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := ctrl.Stats()
			if st.Completed+st.Failed > st.Submitted {
				errc <- fmt.Errorf("aggregate stats tear: %+v", st)
				return
			}
			for model, ms := range st.Models {
				if ms.Completed+ms.Failed > ms.Submitted {
					errc <- fmt.Errorf("%s stats tear: %+v", model, ms)
					return
				}
			}
			ctrl.InstanceCounts()
			for _, model := range names {
				ctrl.ModelInstanceCounts(model)
			}
			ctrl.InstanceTypes()
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case err := <-errc:
		close(stop)
		t.Fatal(err)
	case <-done:
	}
	close(stop)
	<-observerDone

	st := ctrl.Stats()
	if st.Failed != 0 {
		t.Fatalf("%d queries dropped during multi-model churn", st.Failed)
	}
	want := int64(len(names) * submittersPerModel * perWorker)
	if st.Submitted != want || st.Completed != want {
		t.Fatalf("accounting drifted: %+v, want %d submitted and completed", st, want)
	}
	for _, model := range names {
		ms := st.Models[model]
		if ms.Submitted != want/int64(len(names)) || ms.Completed != ms.Submitted {
			t.Fatalf("%s accounting drifted: %+v", model, ms)
		}
	}
}

// TestSubmitAfterCloseAccounting is the regression test for the
// failed-without-submitted bug: a Submit rejected because the controller
// closed (or a group lost all capacity) must count both submitted and
// failed, so completed + failed <= submitted holds on every path and the
// autopilot's ratios stay meaningful.
func TestSubmitAfterCloseAccounting(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	addrs := startCluster(t, []string{cloud.G4dnXlarge.Name}, 1)
	ctrl, err := NewController(m.Name, kairosPolicy(m, []string{cloud.G4dnXlarge.Name}), 1, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	if res := ctrl.SubmitWait(m.Name, 10); res.Err != nil {
		t.Fatal(res.Err)
	}
	ctrl.Close()
	const rejected = 3
	for i := 0; i < rejected; i++ {
		select {
		case res := <-ctrl.Submit(m.Name, 10):
			if res.Err == nil {
				t.Fatal("submit after close must fail")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("submit after close hung")
		}
	}
	st := ctrl.Stats()
	if st.Submitted != 1+rejected {
		t.Fatalf("submitted = %d, want %d: rejected submissions must be accounted", st.Submitted, 1+rejected)
	}
	if st.Failed != rejected || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Completed+st.Failed > st.Submitted {
		t.Fatalf("invariant broken after close: %+v", st)
	}
}

// TestSubmitRejectsOutOfRangeBatch: an unvalidated batch must fail the
// query with an error reply — not reach the scheduler, whose latency
// predictor panics outside the calibrated range and would take down the
// whole process with it. The rejection is accounted like any failure.
func TestSubmitRejectsOutOfRangeBatch(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	addrs := startCluster(t, []string{cloud.G4dnXlarge.Name}, 1)
	ctrl, err := NewController(m.Name, kairosPolicy(m, []string{cloud.G4dnXlarge.Name}), 1, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	for _, batch := range []int{0, -5, models.MaxBatch + 1} {
		select {
		case res := <-ctrl.Submit(m.Name, batch):
			if res.Err == nil {
				t.Fatalf("batch %d must fail", batch)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("batch %d submit hung", batch)
		}
	}
	// The scheduler survived; a valid query still serves.
	if res := ctrl.SubmitWait(m.Name, 100); res.Err != nil {
		t.Fatal(res.Err)
	}
	st := ctrl.Stats()
	if st.Submitted != 4 || st.Failed != 3 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestUndoDispatchRollsBackReservation is the regression test for the
// phantom-busy-time bug: when a dispatch write fails, the busy-until
// reservation groupRoundLocked took must be undone along with the pending
// entry, so the policy does not keep seeing a flaky instance as loaded.
// The query itself must be requeued, not failed — a broken write means the
// instance is dying, not that the admitted query may be dropped — and the
// instance must be marked draining so rounds route around it.
func TestUndoDispatchRollsBackReservation(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	addrs := startCluster(t, []string{cloud.G4dnXlarge.Name}, 1)
	ctrl, err := NewController(m.Name, kairosPolicy(m, []string{cloud.G4dnXlarge.Name}), 1, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	g := ctrl.groups[m.Name]
	g.mu.Lock()
	ri := g.instances[0]
	base := ri.busyUntil
	baseDispatched := ri.dispatched
	q := &pendingQuery{id: ctrl.nextID.Add(1), model: m.Name, batch: 100, enqueued: time.Now(), done: make(chan QueryResult, 1)}
	reserve := 40 * time.Millisecond
	ri.busyUntil = ri.busyUntil.Add(reserve) // the round's reservation
	ri.pending = append(ri.pending, q)
	ri.byID[q.id] = q
	ri.dispatched++
	d := dispatchItem{q: q, ri: ri, id: q.id, batch: q.batch, reserve: reserve}
	g.mu.Unlock()

	cause := fmt.Errorf("synthetic write failure")
	ctrl.undoDispatch(g, d, cause)

	select {
	case res := <-q.done:
		t.Fatalf("undone dispatch must requeue, not deliver (got %+v)", res)
	case <-time.After(50 * time.Millisecond):
	}
	g.mu.Lock()
	rolledBack := ri.busyUntil
	pendingLeft := len(ri.pending)
	stillIndexed := ri.byID[q.id] != nil
	dispatched := ri.dispatched
	requeued := len(g.waiting) == 1 && g.waiting[0] == q
	draining := ri.draining
	g.mu.Unlock()
	if !requeued {
		t.Fatal("undone dispatch did not requeue the query at the head of the central queue")
	}
	if !draining {
		t.Fatal("a failed write must mark the instance draining")
	}
	if !rolledBack.Equal(base) {
		t.Fatalf("busyUntil not rolled back: %v, want %v (phantom busy time of %v)",
			rolledBack, base, rolledBack.Sub(base))
	}
	if pendingLeft != 0 || stillIndexed {
		t.Fatalf("pending not rolled back: %d entries, indexed=%v", pendingLeft, stillIndexed)
	}
	if dispatched != baseDispatched {
		t.Fatalf("dispatched = %d, want %d", dispatched, baseDispatched)
	}
	// A second undo for the same item must be a no-op (the identity check):
	// the query is gone from byID, so nothing double-rolls the clock.
	ctrl.undoDispatch(g, d, cause)
	g.mu.Lock()
	doubled := ri.busyUntil
	g.mu.Unlock()
	if !doubled.Equal(base) {
		t.Fatal("double undo rolled the reservation back twice")
	}
}
