package server

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"kairos/internal/sim"
)

// Controller is the central controller of Sec. 6, generalized to a
// multi-model fleet: it accepts queries tagged with their model, keeps one
// central queue per model, runs each model's query-distribution policy
// (normally Kairos's matching) in real time over that model's instances,
// and sends dispatched queries to the instance servers over the wire.
// Instances join the scheduler group of the model their handshake banner
// announces; a banner naming a model the controller does not serve is
// rejected. The fleet is reconfigurable at runtime: AddInstance dials new
// servers into the rotation and RemoveInstance drains and disconnects
// running ones, so a control plane (see internal/autopilot) can reconcile
// every model's fleet toward a fresh plan without dropping in-flight
// queries.
type Controller struct {
	// TimeScale must match the instance servers' scale.
	TimeScale float64

	mu        sync.Mutex
	groups    map[string]*modelGroup
	order     []string // sorted model names: deterministic iteration
	nextID    int64
	kick      chan struct{}
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// onComplete, when set, observes every delivered QueryResult.
	onComplete func(model string, batch int, res QueryResult)
}

// GroupSpec describes one served model's scheduling group: the
// query-distribution policy deciding dispatches (it sees times in model
// milliseconds) and the latency predictor used for busy-time tracking.
type GroupSpec struct {
	Policy  sim.Distributor
	Predict func(typeName string, batch int) float64
}

// modelGroup is one model's serving state: its policy, its slice of the
// fleet, and its central queue. All fields are guarded by Controller.mu.
type modelGroup struct {
	model     string
	policy    sim.Distributor
	predict   func(typeName string, batch int) float64
	instances []*remoteInstance
	waiting   []*pendingQuery
	submitted int64
	completed int64
	failed    int64
}

type remoteInstance struct {
	model     string
	typeName  string
	addr      string
	conn      net.Conn
	writeMu   sync.Mutex
	busyUntil time.Time
	// pending holds dispatched-but-unfinished queries in dispatch order.
	pending []*pendingQuery
	// draining excludes the instance from new dispatches; once pending
	// empties, RemoveInstance closes the connection and drops it.
	draining   bool
	dispatched int64
	completed  int64
	// busyMS accumulates ground-truth service time (model ms) from replies.
	busyMS float64
}

type pendingQuery struct {
	id        int64
	model     string
	batch     int
	enqueued  time.Time
	done      chan QueryResult
	completed bool // guarded by Controller.mu: first completion wins
}

// QueryResult reports one served query.
type QueryResult struct {
	// Model is the model the query was submitted for.
	Model string
	// Batch is the query's batch size.
	Batch int
	// LatencyMS is the end-to-end latency in model milliseconds
	// (wall-clock divided by TimeScale).
	LatencyMS float64
	// Instance is the serving instance type.
	Instance string
	// Err is non-nil if the query failed (connection loss, server error).
	Err error
}

// InstanceStats is one connected instance's cumulative accounting.
type InstanceStats struct {
	// Model is the model the instance announced in the handshake.
	Model string `json:"model"`
	// TypeName is the instance type announced in the handshake.
	TypeName string `json:"type_name"`
	// Addr is the dialed server address.
	Addr string `json:"addr"`
	// Dispatched counts queries sent to the instance.
	Dispatched int64 `json:"dispatched"`
	// Completed counts successful replies.
	Completed int64 `json:"completed"`
	// Pending is the current dispatched-but-unfinished depth.
	Pending int `json:"pending"`
	// BusyMS is the accumulated ground-truth service time in model ms.
	BusyMS float64 `json:"busy_ms"`
	// Draining marks an instance being removed (no new dispatches).
	Draining bool `json:"draining"`
}

// ModelStats is one model group's accounting snapshot.
type ModelStats struct {
	// Waiting is the model's central queue depth.
	Waiting int `json:"waiting"`
	// Submitted counts every query accepted for the model.
	Submitted int64 `json:"submitted"`
	// Completed counts queries delivered without error.
	Completed int64 `json:"completed"`
	// Failed counts queries delivered with an error.
	Failed int64 `json:"failed"`
	// Instances snapshots the model's instances in fleet order.
	Instances []InstanceStats `json:"instances"`
}

// Stats is a point-in-time snapshot of the controller's accounting — the
// shared observability surface read by kairosctl and the autopilot. The
// top-level counters aggregate every model; Models carries the per-model
// sections.
type Stats struct {
	// Waiting is the total central queue depth across models.
	Waiting int `json:"waiting"`
	// Submitted counts every query accepted by Submit.
	Submitted int64 `json:"submitted"`
	// Completed counts queries delivered without error.
	Completed int64 `json:"completed"`
	// Failed counts queries delivered with an error.
	Failed int64 `json:"failed"`
	// Models maps each served model to its group's accounting.
	Models map[string]ModelStats `json:"models"`
	// Instances snapshots every instance in model-then-fleet order.
	Instances []InstanceStats `json:"instances"`
}

// NewController dials the instance servers and starts the scheduling loop
// for a single-model deployment — the one-group case of NewMultiController.
func NewController(model string, policy sim.Distributor, timeScale float64, predict func(string, int) float64, addrs []string) (*Controller, error) {
	return NewMultiController(map[string]GroupSpec{model: {Policy: policy, Predict: predict}}, timeScale, addrs)
}

// NewMultiController dials the instance servers, assigns each to the
// scheduler group of the model its banner announces, and starts the
// scheduling loop. Every announced model must have a group; an instance
// announcing an unexpected model is rejected (wrong-model instances must
// never silently serve another model's queries).
func NewMultiController(groups map[string]GroupSpec, timeScale float64, addrs []string) (*Controller, error) {
	if len(groups) == 0 {
		return nil, errors.New("server: controller needs at least one model group")
	}
	if timeScale <= 0 {
		timeScale = 1
	}
	if len(addrs) == 0 {
		return nil, errors.New("server: controller needs at least one instance address")
	}
	c := &Controller{
		TimeScale: timeScale,
		groups:    make(map[string]*modelGroup, len(groups)),
		kick:      make(chan struct{}, 1),
		closed:    make(chan struct{}),
	}
	for model, spec := range groups {
		if model == "" {
			return nil, errors.New("server: model group with an empty model name")
		}
		if spec.Policy == nil || spec.Predict == nil {
			return nil, fmt.Errorf("server: model group %s needs a policy and a predictor", model)
		}
		c.groups[model] = &modelGroup{model: model, policy: spec.Policy, predict: spec.Predict}
		c.order = append(c.order, model)
	}
	sort.Strings(c.order)
	for _, addr := range addrs {
		ri, err := c.dialInstance(addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.groups[ri.model].instances = append(c.groups[ri.model].instances, ri)
		c.wg.Add(1)
		go c.readLoop(ri)
	}
	c.wg.Add(1)
	go c.scheduleLoop()
	return c, nil
}

// dialInstance connects and handshakes with one instance server,
// validating the announced model against the served set.
func (c *Controller) dialInstance(addr string) (*remoteInstance, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: dialing %s: %w", addr, err)
	}
	var hello Hello
	if err := ReadFrame(conn, &hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: handshake with %s: %w", addr, err)
	}
	if _, ok := c.groups[hello.Model]; !ok {
		conn.Close()
		return nil, fmt.Errorf("server: instance %s at %s announces model %q, controller serves %v",
			hello.TypeName, addr, hello.Model, c.order)
	}
	return &remoteInstance{model: hello.Model, typeName: hello.TypeName, addr: addr, conn: conn, busyUntil: time.Now()}, nil
}

// Models lists the served model names in sorted order.
func (c *Controller) Models() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// AddInstance dials one more instance server into the rotation of the
// model its banner announces and returns that type name. Safe to call
// while traffic is flowing.
func (c *Controller) AddInstance(addr string) (string, error) {
	ri, err := c.dialInstance(addr)
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	select {
	case <-c.closed:
		c.mu.Unlock()
		ri.conn.Close()
		return "", errors.New("server: controller closed")
	default:
	}
	g := c.groups[ri.model]
	g.instances = append(g.instances, ri)
	c.wg.Add(1)
	c.mu.Unlock()
	go c.readLoop(ri)
	c.wake()
	return ri.typeName, nil
}

// RemoveInstance drains and disconnects one instance of the given type
// from the model's group: the instance stops receiving new dispatches
// immediately, every already-dispatched query completes and is delivered
// normally, and only then is the connection closed and the instance
// dropped from the fleet. Among removable candidates it picks the one with
// the shallowest backlog. It blocks until the drain finishes and returns
// the removed instance's dialed address so launchers can stop the matching
// server.
func (c *Controller) RemoveInstance(model, typeName string) (string, error) {
	c.mu.Lock()
	g, ok := c.groups[model]
	if !ok {
		c.mu.Unlock()
		return "", fmt.Errorf("server: controller does not serve model %q (have %v)", model, c.order)
	}
	var target *remoteInstance
	for _, ri := range g.instances {
		if ri.typeName != typeName || ri.draining {
			continue
		}
		if target == nil || len(ri.pending) < len(target.pending) {
			target = ri
		}
	}
	if target == nil {
		c.mu.Unlock()
		return "", fmt.Errorf("server: no removable instance of type %s serving %s", typeName, model)
	}
	target.draining = true
	c.mu.Unlock()
	c.wake() // re-dispatch anything the policy was routing here

	// Drain: dispatched queries finish through the normal reply path.
	for {
		c.mu.Lock()
		depth := len(target.pending)
		c.mu.Unlock()
		if depth == 0 {
			break
		}
		select {
		case <-c.closed:
			return "", errors.New("server: controller closed during drain")
		case <-time.After(2 * time.Millisecond):
		}
	}
	// Close the connection (its readLoop exits) and drop it from the fleet.
	target.conn.Close()
	c.mu.Lock()
	c.dropLocked(target)
	orphans := c.orphanedLocked(g)
	c.mu.Unlock()
	for _, q := range orphans {
		c.deliver(q, QueryResult{Err: fmt.Errorf("server: model %s has no serving capacity", model)})
	}
	return target.addr, nil
}

// dropLocked removes the instance from its group; callers hold c.mu.
func (c *Controller) dropLocked(target *remoteInstance) {
	g := c.groups[target.model]
	for i, ri := range g.instances {
		if ri == target {
			g.instances = append(g.instances[:i], g.instances[i+1:]...)
			return
		}
	}
}

// orphanedLocked empties a group's central queue when its last instance
// is gone: with nothing left to dispatch to, the waiting queries would
// otherwise hang forever. The returned queries must be failed with
// deliver outside the lock. Callers hold c.mu.
func (c *Controller) orphanedLocked(g *modelGroup) []*pendingQuery {
	if len(g.instances) > 0 || len(g.waiting) == 0 {
		return nil
	}
	orphans := g.waiting
	g.waiting = nil
	return orphans
}

// InstanceTypes lists the connected instance types in model-then-fleet
// order, including draining ones.
func (c *Controller) InstanceTypes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, model := range c.order {
		for _, ri := range c.groups[model].instances {
			out = append(out, ri.typeName)
		}
	}
	return out
}

// InstanceCounts returns the number of non-draining instances per type
// across every model — the aggregate fleet the schedulers can use.
func (c *Controller) InstanceCounts() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int)
	for _, g := range c.groups {
		for _, ri := range g.instances {
			if !ri.draining {
				out[ri.typeName]++
			}
		}
	}
	return out
}

// ModelInstanceCounts returns the number of non-draining instances per
// type serving one model — the fleet that model's scheduler can use.
func (c *Controller) ModelInstanceCounts(model string) map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int)
	g, ok := c.groups[model]
	if !ok {
		return out
	}
	for _, ri := range g.instances {
		if !ri.draining {
			out[ri.typeName]++
		}
	}
	return out
}

// Stats snapshots the controller's accounting across every model group.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{Models: make(map[string]ModelStats, len(c.order))}
	for _, model := range c.order {
		g := c.groups[model]
		ms := ModelStats{
			Waiting:   len(g.waiting),
			Submitted: g.submitted,
			Completed: g.completed,
			Failed:    g.failed,
			Instances: make([]InstanceStats, len(g.instances)),
		}
		for i, ri := range g.instances {
			ms.Instances[i] = InstanceStats{
				Model:      ri.model,
				TypeName:   ri.typeName,
				Addr:       ri.addr,
				Dispatched: ri.dispatched,
				Completed:  ri.completed,
				Pending:    len(ri.pending),
				BusyMS:     ri.busyMS,
				Draining:   ri.draining,
			}
		}
		s.Models[model] = ms
		s.Waiting += ms.Waiting
		s.Submitted += ms.Submitted
		s.Completed += ms.Completed
		s.Failed += ms.Failed
		s.Instances = append(s.Instances, ms.Instances...)
	}
	return s
}

// SetOnComplete installs a callback observing every delivered QueryResult
// (successes and failures; check res.Err). It runs outside the controller
// lock and must not block for long — it is on the completion path.
func (c *Controller) SetOnComplete(fn func(model string, batch int, res QueryResult)) {
	c.mu.Lock()
	c.onComplete = fn
	c.mu.Unlock()
}

// Submit enqueues one query for the named model and returns a channel
// delivering its result. Unknown models, models whose group currently has
// no serving capacity (every instance removed or draining — reachable
// when the shared-budget planner starves a model), and submissions after
// Close all fail immediately instead of hanging.
func (c *Controller) Submit(model string, batch int) <-chan QueryResult {
	done := make(chan QueryResult, 1)
	c.mu.Lock()
	g, ok := c.groups[model]
	if !ok {
		c.mu.Unlock()
		done <- QueryResult{Model: model, Batch: batch,
			Err: fmt.Errorf("server: controller does not serve model %q (have %v)", model, c.order)}
		return done
	}
	select {
	case <-c.closed:
		g.failed++
		c.mu.Unlock()
		done <- QueryResult{Model: model, Batch: batch, Err: errors.New("server: controller closed")}
		return done
	default:
	}
	capacity := false
	for _, ri := range g.instances {
		if !ri.draining {
			capacity = true
			break
		}
	}
	if !capacity {
		g.submitted++
		g.failed++
		c.mu.Unlock()
		done <- QueryResult{Model: model, Batch: batch,
			Err: fmt.Errorf("server: model %s has no serving capacity", model)}
		return done
	}
	c.nextID++
	g.submitted++
	q := &pendingQuery{id: c.nextID, model: model, batch: batch, enqueued: time.Now(), done: done}
	g.waiting = append(g.waiting, q)
	c.mu.Unlock()
	c.wake()
	return done
}

// SubmitWait submits and blocks for the result.
func (c *Controller) SubmitWait(model string, batch int) QueryResult { return <-c.Submit(model, batch) }

// wake nudges the scheduler without blocking.
func (c *Controller) wake() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// deliver completes one query under c.mu and invokes the completion
// callback after releasing the lock.
func (c *Controller) deliver(q *pendingQuery, res QueryResult) {
	res.Model = q.model
	res.Batch = q.batch
	c.mu.Lock()
	if q.completed {
		c.mu.Unlock()
		return
	}
	q.completed = true
	g := c.groups[q.model]
	if res.Err != nil {
		g.failed++
	} else {
		g.completed++
	}
	cb := c.onComplete
	c.mu.Unlock()
	q.done <- res
	if cb != nil {
		cb(q.model, q.batch, res)
	}
}

// Close shuts down the controller and fails outstanding queries, both the
// centrally-waiting and the dispatched-but-unfinished ones. Like every
// other completion path, the failures reach the onComplete observer.
func (c *Controller) Close() {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.mu.Lock()
		errClosed := errors.New("server: controller closed")
		var failed []QueryResult
		fail := func(q *pendingQuery, instance string) {
			if q.completed {
				return
			}
			q.completed = true
			c.groups[q.model].failed++
			res := QueryResult{Model: q.model, Batch: q.batch, Err: errClosed, Instance: instance}
			q.done <- res
			failed = append(failed, res)
		}
		for _, model := range c.order {
			g := c.groups[model]
			for _, ri := range g.instances {
				ri.conn.Close()
				for _, q := range ri.pending {
					fail(q, ri.typeName)
				}
				ri.pending = nil
			}
			for _, q := range g.waiting {
				fail(q, "")
			}
			g.waiting = nil
		}
		cb := c.onComplete
		c.mu.Unlock()
		if cb != nil {
			for _, res := range failed {
				cb(res.Model, res.Batch, res)
			}
		}
	})
	c.wg.Wait()
}

// evict removes a dead instance from its group and fails its in-flight
// queries. Draining is set first so no scheduling round re-dispatches to
// it while the failures are delivered.
func (c *Controller) evict(ri *remoteInstance, cause error) {
	c.mu.Lock()
	ri.draining = true
	failed := ri.pending
	ri.pending = nil
	c.dropLocked(ri)
	orphans := c.orphanedLocked(c.groups[ri.model])
	c.mu.Unlock()
	ri.conn.Close()
	for _, q := range failed {
		c.deliver(q, QueryResult{Err: fmt.Errorf("server: instance %s lost: %w", ri.typeName, cause), Instance: ri.typeName})
	}
	for _, q := range orphans {
		c.deliver(q, QueryResult{Err: fmt.Errorf("server: model %s has no serving capacity (instance %s lost: %v)", ri.model, ri.typeName, cause)})
	}
	c.wake()
}

// scheduleLoop runs distribution rounds whenever kicked.
func (c *Controller) scheduleLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.closed:
			return
		case <-c.kick:
			c.scheduleRound()
		}
	}
}

// dispatchItem pairs a dispatched query with its target for the
// out-of-lock network write.
type dispatchItem struct {
	q  *pendingQuery
	ri *remoteInstance
}

// scheduleRound runs one distribution round per model group. The lock is
// taken per group, not for the whole round: one model's matching cost
// (the policy's Assign can be cubic in the queue depth) must not stall
// submissions, completions, or stats reads for every other model.
// c.order is immutable after construction, so iterating it outside the
// lock is safe.
func (c *Controller) scheduleRound() {
	var dispatch []dispatchItem
	for _, model := range c.order {
		c.mu.Lock()
		dispatch = append(dispatch, c.groupRoundLocked(c.groups[model], time.Now())...)
		c.mu.Unlock()
	}

	for _, d := range dispatch {
		d.ri.writeMu.Lock()
		err := WriteFrame(d.ri.conn, Request{ID: d.q.id, Model: d.q.model, Batch: d.q.batch})
		d.ri.writeMu.Unlock()
		if err != nil {
			c.mu.Lock()
			// Forget the failed dispatch so a drain does not wait on it.
			for k, p := range d.ri.pending {
				if p == d.q {
					d.ri.pending = append(d.ri.pending[:k], d.ri.pending[k+1:]...)
					break
				}
			}
			c.mu.Unlock()
			c.deliver(d.q, QueryResult{Err: err, Instance: d.ri.typeName})
		}
	}
}

// groupRoundLocked builds one model group's policy views and collects its
// assignments. Draining instances are invisible to the policy, so a
// removal never receives new work. Callers hold c.mu.
func (c *Controller) groupRoundLocked(g *modelGroup, now time.Time) []dispatchItem {
	if len(g.waiting) == 0 {
		return nil
	}
	active := make([]*remoteInstance, 0, len(g.instances))
	for _, ri := range g.instances {
		if !ri.draining {
			active = append(active, ri)
		}
	}
	if len(active) == 0 {
		return nil
	}
	toModelMS := func(d time.Duration) float64 {
		if d < 0 {
			return 0
		}
		return float64(d) / float64(time.Millisecond) / c.TimeScale
	}
	qviews := make([]sim.QueryView, len(g.waiting))
	for i, q := range g.waiting {
		// ID carries the stable arrival sequence number; partitioned
		// policies key on it across scheduling rounds.
		qviews[i] = sim.QueryView{Index: i, ID: int(q.id), Batch: q.batch, WaitMS: toModelMS(now.Sub(q.enqueued))}
	}
	iviews := make([]sim.InstanceView, len(active))
	for i, ri := range active {
		var queued []int
		// The head of pending is in flight; the rest are queued behind it.
		for k := 1; k < len(ri.pending); k++ {
			queued = append(queued, ri.pending[k].batch)
		}
		remaining := 0.0
		if len(ri.pending) > 0 {
			remaining = toModelMS(ri.busyUntil.Sub(now))
			if len(queued) > 0 {
				// busyUntil covers the whole backlog; attribute the queued
				// service to QueuedBatches and keep the remainder here.
				for _, b := range queued {
					remaining -= g.predict(ri.typeName, b)
				}
				if remaining < 0 {
					remaining = 0
				}
			}
		}
		iviews[i] = sim.InstanceView{Index: i, TypeName: ri.typeName, RemainingMS: remaining, QueuedBatches: queued}
	}
	assignments := g.policy.Assign(toModelMS(time.Duration(now.UnixNano())), qviews, iviews)

	var dispatch []dispatchItem
	taken := make(map[int]bool, len(assignments))
	for _, a := range assignments {
		if a.Query < 0 || a.Query >= len(g.waiting) || a.Instance < 0 || a.Instance >= len(active) || taken[a.Query] {
			continue
		}
		taken[a.Query] = true
		q := g.waiting[a.Query]
		ri := active[a.Instance]
		service := g.predict(ri.typeName, q.batch)
		scaled := time.Duration(service * c.TimeScale * float64(time.Millisecond))
		if ri.busyUntil.Before(now) {
			ri.busyUntil = now
		}
		ri.busyUntil = ri.busyUntil.Add(scaled)
		ri.pending = append(ri.pending, q)
		ri.dispatched++
		dispatch = append(dispatch, dispatchItem{q, ri})
	}
	if len(taken) > 0 {
		next := g.waiting[:0]
		for i, q := range g.waiting {
			if !taken[i] {
				next = append(next, q)
			}
		}
		g.waiting = next
	}
	return dispatch
}

// readLoop consumes replies from one instance and completes queries.
// When the connection dies outside Close, the instance is evicted from
// the fleet and its in-flight queries fail — so drains never wait on a
// dead instance and submitters never hang on a lost reply.
func (c *Controller) readLoop(ri *remoteInstance) {
	defer c.wg.Done()
	for {
		var reply Reply
		if err := ReadFrame(ri.conn, &reply); err != nil {
			select {
			case <-c.closed:
				// Close owns the cleanup of pending queries.
			default:
				c.evict(ri, err)
			}
			return
		}
		now := time.Now()
		c.mu.Lock()
		var q *pendingQuery
		for k, p := range ri.pending {
			if p.id == reply.ID {
				q = p
				ri.pending = append(ri.pending[:k], ri.pending[k+1:]...)
				break
			}
		}
		if q != nil && q.completed {
			q = nil
		}
		if q != nil {
			if reply.Err == "" {
				ri.completed++
				ri.busyMS += reply.ServiceMS
				// Ground-truth service feedback, exactly as the simulator
				// delivers it: online learners and query monitors train from
				// real completions too. Under c.mu so Observe never races
				// Assign (policies are not internally synchronized).
				if obs, ok := c.groups[ri.model].policy.(sim.Observer); ok {
					obs.Observe(ri.typeName, q.batch, reply.ServiceMS)
				}
			}
		}
		c.mu.Unlock()
		if q == nil {
			continue // stale reply or already failed by Close
		}
		res := QueryResult{
			LatencyMS: float64(now.Sub(q.enqueued)) / float64(time.Millisecond) / c.TimeScale,
			Instance:  ri.typeName,
		}
		if reply.Err != "" {
			res.Err = errors.New(reply.Err)
		}
		c.deliver(q, res)
		c.wake()
	}
}
