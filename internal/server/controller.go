package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"kairos/internal/sim"
)

// Controller is the central controller of Sec. 6: it accepts queries,
// keeps the central queue, runs a query-distribution policy (normally
// Kairos's matching) in real time, and sends dispatched queries to the
// instance servers over the wire.
type Controller struct {
	// Policy decides dispatches; it sees times in model milliseconds.
	Policy sim.Distributor
	// TimeScale must match the instance servers' scale.
	TimeScale float64
	// Predict estimates service latency (model ms) for busy-time tracking.
	Predict func(typeName string, batch int) float64

	mu        sync.Mutex
	instances []*remoteInstance
	waiting   []*pendingQuery
	nextID    int64
	kick      chan struct{}
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

type remoteInstance struct {
	typeName  string
	conn      net.Conn
	writeMu   sync.Mutex
	busyUntil time.Time
	// pending holds dispatched-but-unfinished queries in dispatch order.
	pending []*pendingQuery
}

type pendingQuery struct {
	id        int64
	batch     int
	enqueued  time.Time
	done      chan QueryResult
	completed bool // guarded by Controller.mu: first completion wins
}

// QueryResult reports one served query.
type QueryResult struct {
	// LatencyMS is the end-to-end latency in model milliseconds
	// (wall-clock divided by TimeScale).
	LatencyMS float64
	// Instance is the serving instance type.
	Instance string
	// Err is non-nil if the query failed (connection loss, server error).
	Err error
}

// NewController dials the instance servers and starts the scheduling loop.
func NewController(policy sim.Distributor, timeScale float64, predict func(string, int) float64, addrs []string) (*Controller, error) {
	if policy == nil || predict == nil {
		return nil, errors.New("server: controller needs a policy and a predictor")
	}
	if timeScale <= 0 {
		timeScale = 1
	}
	if len(addrs) == 0 {
		return nil, errors.New("server: controller needs at least one instance address")
	}
	c := &Controller{
		Policy:    policy,
		TimeScale: timeScale,
		Predict:   predict,
		kick:      make(chan struct{}, 1),
		closed:    make(chan struct{}),
	}
	for _, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("server: dialing %s: %w", addr, err)
		}
		var hello Hello
		if err := ReadFrame(conn, &hello); err != nil {
			conn.Close()
			c.Close()
			return nil, fmt.Errorf("server: handshake with %s: %w", addr, err)
		}
		ri := &remoteInstance{typeName: hello.TypeName, conn: conn, busyUntil: time.Now()}
		c.instances = append(c.instances, ri)
		c.wg.Add(1)
		go c.readLoop(ri)
	}
	c.wg.Add(1)
	go c.scheduleLoop()
	return c, nil
}

// InstanceTypes lists the connected instance types in index order.
func (c *Controller) InstanceTypes() []string {
	out := make([]string, len(c.instances))
	for i, ri := range c.instances {
		out[i] = ri.typeName
	}
	return out
}

// Submit enqueues one query and returns a channel delivering its result.
func (c *Controller) Submit(batch int) <-chan QueryResult {
	done := make(chan QueryResult, 1)
	c.mu.Lock()
	c.nextID++
	q := &pendingQuery{id: c.nextID, batch: batch, enqueued: time.Now(), done: done}
	c.waiting = append(c.waiting, q)
	c.mu.Unlock()
	c.wake()
	return done
}

// SubmitWait submits and blocks for the result.
func (c *Controller) SubmitWait(batch int) QueryResult { return <-c.Submit(batch) }

// wake nudges the scheduler without blocking.
func (c *Controller) wake() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// Close shuts down the controller and fails outstanding queries, both the
// centrally-waiting and the dispatched-but-unfinished ones.
func (c *Controller) Close() {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.mu.Lock()
		errClosed := errors.New("server: controller closed")
		for _, ri := range c.instances {
			ri.conn.Close()
			for _, q := range ri.pending {
				if !q.completed {
					q.completed = true
					q.done <- QueryResult{Err: errClosed, Instance: ri.typeName}
				}
			}
			ri.pending = nil
		}
		for _, q := range c.waiting {
			if !q.completed {
				q.completed = true
				q.done <- QueryResult{Err: errClosed}
			}
		}
		c.waiting = nil
		c.mu.Unlock()
	})
	c.wg.Wait()
}

// scheduleLoop runs distribution rounds whenever kicked.
func (c *Controller) scheduleLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.closed:
			return
		case <-c.kick:
			c.scheduleRound()
		}
	}
}

// scheduleRound builds the policy's views and dispatches its assignments.
func (c *Controller) scheduleRound() {
	c.mu.Lock()
	if len(c.waiting) == 0 {
		c.mu.Unlock()
		return
	}
	now := time.Now()
	toModelMS := func(d time.Duration) float64 {
		if d < 0 {
			return 0
		}
		return float64(d) / float64(time.Millisecond) / c.TimeScale
	}
	qviews := make([]sim.QueryView, len(c.waiting))
	for i, q := range c.waiting {
		// ID carries the stable arrival sequence number; partitioned
		// policies key on it across scheduling rounds.
		qviews[i] = sim.QueryView{Index: i, ID: int(q.id), Batch: q.batch, WaitMS: toModelMS(now.Sub(q.enqueued))}
	}
	iviews := make([]sim.InstanceView, len(c.instances))
	for i, ri := range c.instances {
		var queued []int
		// The head of pending is in flight; the rest are queued behind it.
		for k := 1; k < len(ri.pending); k++ {
			queued = append(queued, ri.pending[k].batch)
		}
		remaining := 0.0
		if len(ri.pending) > 0 {
			remaining = toModelMS(ri.busyUntil.Sub(now))
			if len(queued) > 0 {
				// busyUntil covers the whole backlog; attribute the queued
				// service to QueuedBatches and keep the remainder here.
				for _, b := range queued {
					remaining -= c.Predict(ri.typeName, b)
				}
				if remaining < 0 {
					remaining = 0
				}
			}
		}
		iviews[i] = sim.InstanceView{Index: i, TypeName: ri.typeName, RemainingMS: remaining, QueuedBatches: queued}
	}
	assignments := c.Policy.Assign(toModelMS(time.Duration(now.UnixNano())), qviews, iviews)

	var dispatch []struct {
		q  *pendingQuery
		ri *remoteInstance
	}
	taken := make(map[int]bool, len(assignments))
	for _, a := range assignments {
		if a.Query < 0 || a.Query >= len(c.waiting) || a.Instance < 0 || a.Instance >= len(c.instances) || taken[a.Query] {
			continue
		}
		taken[a.Query] = true
		q := c.waiting[a.Query]
		ri := c.instances[a.Instance]
		service := c.Predict(ri.typeName, q.batch)
		scaled := time.Duration(service * c.TimeScale * float64(time.Millisecond))
		if ri.busyUntil.Before(now) {
			ri.busyUntil = now
		}
		ri.busyUntil = ri.busyUntil.Add(scaled)
		ri.pending = append(ri.pending, q)
		dispatch = append(dispatch, struct {
			q  *pendingQuery
			ri *remoteInstance
		}{q, ri})
	}
	if len(taken) > 0 {
		next := c.waiting[:0]
		for i, q := range c.waiting {
			if !taken[i] {
				next = append(next, q)
			}
		}
		c.waiting = next
	}
	c.mu.Unlock()

	for _, d := range dispatch {
		d.ri.writeMu.Lock()
		err := WriteFrame(d.ri.conn, Request{ID: d.q.id, Batch: d.q.batch})
		d.ri.writeMu.Unlock()
		if err != nil {
			c.mu.Lock()
			if !d.q.completed {
				d.q.completed = true
				d.q.done <- QueryResult{Err: err, Instance: d.ri.typeName}
			}
			c.mu.Unlock()
		}
	}
}

// readLoop consumes replies from one instance and completes queries.
func (c *Controller) readLoop(ri *remoteInstance) {
	defer c.wg.Done()
	for {
		var reply Reply
		if err := ReadFrame(ri.conn, &reply); err != nil {
			select {
			case <-c.closed:
			default:
			}
			return
		}
		now := time.Now()
		c.mu.Lock()
		var q *pendingQuery
		for k, p := range ri.pending {
			if p.id == reply.ID {
				q = p
				ri.pending = append(ri.pending[:k], ri.pending[k+1:]...)
				break
			}
		}
		if q != nil && q.completed {
			q = nil
		}
		if q != nil {
			q.completed = true
			if reply.Err == "" {
				// Ground-truth service feedback, exactly as the simulator
				// delivers it: online learners and query monitors train from
				// real completions too. Under c.mu so Observe never races
				// Assign (policies are not internally synchronized).
				if obs, ok := c.Policy.(sim.Observer); ok {
					obs.Observe(ri.typeName, q.batch, reply.ServiceMS)
				}
			}
		}
		c.mu.Unlock()
		if q == nil {
			continue // stale reply or already failed by Close
		}
		res := QueryResult{
			LatencyMS: float64(now.Sub(q.enqueued)) / float64(time.Millisecond) / c.TimeScale,
			Instance:  ri.typeName,
		}
		if reply.Err != "" {
			res.Err = errors.New(reply.Err)
		}
		q.done <- res
		c.wake()
	}
}
