package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"kairos/internal/sim"
)

// Controller is the central controller of Sec. 6: it accepts queries,
// keeps the central queue, runs a query-distribution policy (normally
// Kairos's matching) in real time, and sends dispatched queries to the
// instance servers over the wire. The fleet is reconfigurable at runtime:
// AddInstance dials new servers into the rotation and RemoveInstance
// drains and disconnects running ones, so a control plane (see
// internal/autopilot) can reconcile the fleet toward a fresh plan without
// dropping in-flight queries.
type Controller struct {
	// Policy decides dispatches; it sees times in model milliseconds.
	Policy sim.Distributor
	// TimeScale must match the instance servers' scale.
	TimeScale float64
	// Predict estimates service latency (model ms) for busy-time tracking.
	Predict func(typeName string, batch int) float64

	mu        sync.Mutex
	instances []*remoteInstance
	waiting   []*pendingQuery
	nextID    int64
	kick      chan struct{}
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// onComplete, when set, observes every delivered QueryResult.
	onComplete func(batch int, res QueryResult)
	submitted  int64
	completed  int64
	failed     int64
}

type remoteInstance struct {
	typeName  string
	addr      string
	conn      net.Conn
	writeMu   sync.Mutex
	busyUntil time.Time
	// pending holds dispatched-but-unfinished queries in dispatch order.
	pending []*pendingQuery
	// draining excludes the instance from new dispatches; once pending
	// empties, RemoveInstance closes the connection and drops it.
	draining   bool
	dispatched int64
	completed  int64
	// busyMS accumulates ground-truth service time (model ms) from replies.
	busyMS float64
}

type pendingQuery struct {
	id        int64
	batch     int
	enqueued  time.Time
	done      chan QueryResult
	completed bool // guarded by Controller.mu: first completion wins
}

// QueryResult reports one served query.
type QueryResult struct {
	// Batch is the query's batch size.
	Batch int
	// LatencyMS is the end-to-end latency in model milliseconds
	// (wall-clock divided by TimeScale).
	LatencyMS float64
	// Instance is the serving instance type.
	Instance string
	// Err is non-nil if the query failed (connection loss, server error).
	Err error
}

// InstanceStats is one connected instance's cumulative accounting.
type InstanceStats struct {
	// TypeName is the instance type announced in the handshake.
	TypeName string `json:"type_name"`
	// Addr is the dialed server address.
	Addr string `json:"addr"`
	// Dispatched counts queries sent to the instance.
	Dispatched int64 `json:"dispatched"`
	// Completed counts successful replies.
	Completed int64 `json:"completed"`
	// Pending is the current dispatched-but-unfinished depth.
	Pending int `json:"pending"`
	// BusyMS is the accumulated ground-truth service time in model ms.
	BusyMS float64 `json:"busy_ms"`
	// Draining marks an instance being removed (no new dispatches).
	Draining bool `json:"draining"`
}

// Stats is a point-in-time snapshot of the controller's accounting — the
// shared observability surface read by kairosctl and the autopilot.
type Stats struct {
	// Waiting is the central queue depth.
	Waiting int `json:"waiting"`
	// Submitted counts every query accepted by Submit.
	Submitted int64 `json:"submitted"`
	// Completed counts queries delivered without error.
	Completed int64 `json:"completed"`
	// Failed counts queries delivered with an error.
	Failed int64 `json:"failed"`
	// Instances snapshots the per-instance accounting in fleet order.
	Instances []InstanceStats `json:"instances"`
}

// NewController dials the instance servers and starts the scheduling loop.
func NewController(policy sim.Distributor, timeScale float64, predict func(string, int) float64, addrs []string) (*Controller, error) {
	if policy == nil || predict == nil {
		return nil, errors.New("server: controller needs a policy and a predictor")
	}
	if timeScale <= 0 {
		timeScale = 1
	}
	if len(addrs) == 0 {
		return nil, errors.New("server: controller needs at least one instance address")
	}
	c := &Controller{
		Policy:    policy,
		TimeScale: timeScale,
		Predict:   predict,
		kick:      make(chan struct{}, 1),
		closed:    make(chan struct{}),
	}
	for _, addr := range addrs {
		ri, err := c.dialInstance(addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.instances = append(c.instances, ri)
		c.wg.Add(1)
		go c.readLoop(ri)
	}
	c.wg.Add(1)
	go c.scheduleLoop()
	return c, nil
}

// dialInstance connects and handshakes with one instance server.
func (c *Controller) dialInstance(addr string) (*remoteInstance, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: dialing %s: %w", addr, err)
	}
	var hello Hello
	if err := ReadFrame(conn, &hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: handshake with %s: %w", addr, err)
	}
	return &remoteInstance{typeName: hello.TypeName, addr: addr, conn: conn, busyUntil: time.Now()}, nil
}

// AddInstance dials one more instance server into the rotation and returns
// its announced type name. Safe to call while traffic is flowing.
func (c *Controller) AddInstance(addr string) (string, error) {
	ri, err := c.dialInstance(addr)
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	select {
	case <-c.closed:
		c.mu.Unlock()
		ri.conn.Close()
		return "", errors.New("server: controller closed")
	default:
	}
	c.instances = append(c.instances, ri)
	c.wg.Add(1)
	c.mu.Unlock()
	go c.readLoop(ri)
	c.wake()
	return ri.typeName, nil
}

// RemoveInstance drains and disconnects one instance of the given type:
// the instance stops receiving new dispatches immediately, every
// already-dispatched query completes and is delivered normally, and only
// then is the connection closed and the instance dropped from the fleet.
// Among removable candidates it picks the one with the shallowest backlog.
// It blocks until the drain finishes and returns the removed instance's
// dialed address so launchers can stop the matching server.
func (c *Controller) RemoveInstance(typeName string) (string, error) {
	c.mu.Lock()
	var target *remoteInstance
	for _, ri := range c.instances {
		if ri.typeName != typeName || ri.draining {
			continue
		}
		if target == nil || len(ri.pending) < len(target.pending) {
			target = ri
		}
	}
	if target == nil {
		c.mu.Unlock()
		return "", fmt.Errorf("server: no removable instance of type %s", typeName)
	}
	target.draining = true
	c.mu.Unlock()
	c.wake() // re-dispatch anything the policy was routing here

	// Drain: dispatched queries finish through the normal reply path.
	for {
		c.mu.Lock()
		depth := len(target.pending)
		c.mu.Unlock()
		if depth == 0 {
			break
		}
		select {
		case <-c.closed:
			return "", errors.New("server: controller closed during drain")
		case <-time.After(2 * time.Millisecond):
		}
	}
	// Close the connection (its readLoop exits) and drop it from the fleet.
	target.conn.Close()
	c.mu.Lock()
	for i, ri := range c.instances {
		if ri == target {
			c.instances = append(c.instances[:i], c.instances[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
	return target.addr, nil
}

// InstanceTypes lists the connected instance types in fleet order,
// including draining ones.
func (c *Controller) InstanceTypes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.instances))
	for i, ri := range c.instances {
		out[i] = ri.typeName
	}
	return out
}

// InstanceCounts returns the number of non-draining instances per type —
// the fleet the scheduler can actually use.
func (c *Controller) InstanceCounts() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int)
	for _, ri := range c.instances {
		if !ri.draining {
			out[ri.typeName]++
		}
	}
	return out
}

// Stats snapshots the controller's accounting.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Waiting:   len(c.waiting),
		Submitted: c.submitted,
		Completed: c.completed,
		Failed:    c.failed,
		Instances: make([]InstanceStats, len(c.instances)),
	}
	for i, ri := range c.instances {
		s.Instances[i] = InstanceStats{
			TypeName:   ri.typeName,
			Addr:       ri.addr,
			Dispatched: ri.dispatched,
			Completed:  ri.completed,
			Pending:    len(ri.pending),
			BusyMS:     ri.busyMS,
			Draining:   ri.draining,
		}
	}
	return s
}

// SetOnComplete installs a callback observing every delivered QueryResult
// (successes and failures; check res.Err). It runs outside the controller
// lock and must not block for long — it is on the completion path.
func (c *Controller) SetOnComplete(fn func(batch int, res QueryResult)) {
	c.mu.Lock()
	c.onComplete = fn
	c.mu.Unlock()
}

// Submit enqueues one query and returns a channel delivering its result.
// After Close the result fails immediately instead of hanging.
func (c *Controller) Submit(batch int) <-chan QueryResult {
	done := make(chan QueryResult, 1)
	c.mu.Lock()
	select {
	case <-c.closed:
		c.failed++
		c.mu.Unlock()
		done <- QueryResult{Batch: batch, Err: errors.New("server: controller closed")}
		return done
	default:
	}
	c.nextID++
	c.submitted++
	q := &pendingQuery{id: c.nextID, batch: batch, enqueued: time.Now(), done: done}
	c.waiting = append(c.waiting, q)
	c.mu.Unlock()
	c.wake()
	return done
}

// SubmitWait submits and blocks for the result.
func (c *Controller) SubmitWait(batch int) QueryResult { return <-c.Submit(batch) }

// wake nudges the scheduler without blocking.
func (c *Controller) wake() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// deliver completes one query under c.mu and invokes the completion
// callback after releasing the lock.
func (c *Controller) deliver(q *pendingQuery, res QueryResult) {
	res.Batch = q.batch
	c.mu.Lock()
	if q.completed {
		c.mu.Unlock()
		return
	}
	q.completed = true
	if res.Err != nil {
		c.failed++
	} else {
		c.completed++
	}
	cb := c.onComplete
	c.mu.Unlock()
	q.done <- res
	if cb != nil {
		cb(q.batch, res)
	}
}

// Close shuts down the controller and fails outstanding queries, both the
// centrally-waiting and the dispatched-but-unfinished ones. Like every
// other completion path, the failures reach the onComplete observer.
func (c *Controller) Close() {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.mu.Lock()
		errClosed := errors.New("server: controller closed")
		var failed []QueryResult
		fail := func(q *pendingQuery, instance string) {
			if q.completed {
				return
			}
			q.completed = true
			c.failed++
			res := QueryResult{Batch: q.batch, Err: errClosed, Instance: instance}
			q.done <- res
			failed = append(failed, res)
		}
		for _, ri := range c.instances {
			ri.conn.Close()
			for _, q := range ri.pending {
				fail(q, ri.typeName)
			}
			ri.pending = nil
		}
		for _, q := range c.waiting {
			fail(q, "")
		}
		c.waiting = nil
		cb := c.onComplete
		c.mu.Unlock()
		if cb != nil {
			for _, res := range failed {
				cb(res.Batch, res)
			}
		}
	})
	c.wg.Wait()
}

// evict removes a dead instance from the fleet and fails its in-flight
// queries. Draining is set first so no scheduling round re-dispatches to
// it while the failures are delivered.
func (c *Controller) evict(ri *remoteInstance, cause error) {
	c.mu.Lock()
	ri.draining = true
	failed := ri.pending
	ri.pending = nil
	for i, other := range c.instances {
		if other == ri {
			c.instances = append(c.instances[:i], c.instances[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
	ri.conn.Close()
	for _, q := range failed {
		c.deliver(q, QueryResult{Err: fmt.Errorf("server: instance %s lost: %w", ri.typeName, cause), Instance: ri.typeName})
	}
	c.wake()
}

// scheduleLoop runs distribution rounds whenever kicked.
func (c *Controller) scheduleLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.closed:
			return
		case <-c.kick:
			c.scheduleRound()
		}
	}
}

// scheduleRound builds the policy's views and dispatches its assignments.
// Draining instances are invisible to the policy, so a removal never
// receives new work.
func (c *Controller) scheduleRound() {
	c.mu.Lock()
	if len(c.waiting) == 0 {
		c.mu.Unlock()
		return
	}
	active := make([]*remoteInstance, 0, len(c.instances))
	for _, ri := range c.instances {
		if !ri.draining {
			active = append(active, ri)
		}
	}
	if len(active) == 0 {
		c.mu.Unlock()
		return
	}
	now := time.Now()
	toModelMS := func(d time.Duration) float64 {
		if d < 0 {
			return 0
		}
		return float64(d) / float64(time.Millisecond) / c.TimeScale
	}
	qviews := make([]sim.QueryView, len(c.waiting))
	for i, q := range c.waiting {
		// ID carries the stable arrival sequence number; partitioned
		// policies key on it across scheduling rounds.
		qviews[i] = sim.QueryView{Index: i, ID: int(q.id), Batch: q.batch, WaitMS: toModelMS(now.Sub(q.enqueued))}
	}
	iviews := make([]sim.InstanceView, len(active))
	for i, ri := range active {
		var queued []int
		// The head of pending is in flight; the rest are queued behind it.
		for k := 1; k < len(ri.pending); k++ {
			queued = append(queued, ri.pending[k].batch)
		}
		remaining := 0.0
		if len(ri.pending) > 0 {
			remaining = toModelMS(ri.busyUntil.Sub(now))
			if len(queued) > 0 {
				// busyUntil covers the whole backlog; attribute the queued
				// service to QueuedBatches and keep the remainder here.
				for _, b := range queued {
					remaining -= c.Predict(ri.typeName, b)
				}
				if remaining < 0 {
					remaining = 0
				}
			}
		}
		iviews[i] = sim.InstanceView{Index: i, TypeName: ri.typeName, RemainingMS: remaining, QueuedBatches: queued}
	}
	assignments := c.Policy.Assign(toModelMS(time.Duration(now.UnixNano())), qviews, iviews)

	var dispatch []struct {
		q  *pendingQuery
		ri *remoteInstance
	}
	taken := make(map[int]bool, len(assignments))
	for _, a := range assignments {
		if a.Query < 0 || a.Query >= len(c.waiting) || a.Instance < 0 || a.Instance >= len(active) || taken[a.Query] {
			continue
		}
		taken[a.Query] = true
		q := c.waiting[a.Query]
		ri := active[a.Instance]
		service := c.Predict(ri.typeName, q.batch)
		scaled := time.Duration(service * c.TimeScale * float64(time.Millisecond))
		if ri.busyUntil.Before(now) {
			ri.busyUntil = now
		}
		ri.busyUntil = ri.busyUntil.Add(scaled)
		ri.pending = append(ri.pending, q)
		ri.dispatched++
		dispatch = append(dispatch, struct {
			q  *pendingQuery
			ri *remoteInstance
		}{q, ri})
	}
	if len(taken) > 0 {
		next := c.waiting[:0]
		for i, q := range c.waiting {
			if !taken[i] {
				next = append(next, q)
			}
		}
		c.waiting = next
	}
	c.mu.Unlock()

	for _, d := range dispatch {
		d.ri.writeMu.Lock()
		err := WriteFrame(d.ri.conn, Request{ID: d.q.id, Batch: d.q.batch})
		d.ri.writeMu.Unlock()
		if err != nil {
			c.mu.Lock()
			// Forget the failed dispatch so a drain does not wait on it.
			for k, p := range d.ri.pending {
				if p == d.q {
					d.ri.pending = append(d.ri.pending[:k], d.ri.pending[k+1:]...)
					break
				}
			}
			c.mu.Unlock()
			c.deliver(d.q, QueryResult{Err: err, Instance: d.ri.typeName})
		}
	}
}

// readLoop consumes replies from one instance and completes queries.
// When the connection dies outside Close, the instance is evicted from
// the fleet and its in-flight queries fail — so drains never wait on a
// dead instance and submitters never hang on a lost reply.
func (c *Controller) readLoop(ri *remoteInstance) {
	defer c.wg.Done()
	for {
		var reply Reply
		if err := ReadFrame(ri.conn, &reply); err != nil {
			select {
			case <-c.closed:
				// Close owns the cleanup of pending queries.
			default:
				c.evict(ri, err)
			}
			return
		}
		now := time.Now()
		c.mu.Lock()
		var q *pendingQuery
		for k, p := range ri.pending {
			if p.id == reply.ID {
				q = p
				ri.pending = append(ri.pending[:k], ri.pending[k+1:]...)
				break
			}
		}
		if q != nil && q.completed {
			q = nil
		}
		if q != nil {
			if reply.Err == "" {
				ri.completed++
				ri.busyMS += reply.ServiceMS
				// Ground-truth service feedback, exactly as the simulator
				// delivers it: online learners and query monitors train from
				// real completions too. Under c.mu so Observe never races
				// Assign (policies are not internally synchronized).
				if obs, ok := c.Policy.(sim.Observer); ok {
					obs.Observe(ri.typeName, q.batch, reply.ServiceMS)
				}
			}
		}
		c.mu.Unlock()
		if q == nil {
			continue // stale reply or already failed by Close
		}
		res := QueryResult{
			LatencyMS: float64(now.Sub(q.enqueued)) / float64(time.Millisecond) / c.TimeScale,
			Instance:  ri.typeName,
		}
		if reply.Err != "" {
			res.Err = errors.New(reply.Err)
		}
		c.deliver(q, res)
		c.wake()
	}
}
