package server

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kairos/internal/models"
	"kairos/internal/obs"
	"kairos/internal/sim"
)

// Controller is the central controller of Sec. 6, generalized to a
// multi-model fleet: it accepts queries tagged with their model, keeps one
// central queue per model, runs each model's query-distribution policy
// (normally Kairos's matching) in real time over that model's instances,
// and sends dispatched queries to the instance servers over the wire.
// Instances join the scheduler group of the model their handshake banner
// announces; a banner naming a model the controller does not serve is
// rejected. The fleet is reconfigurable at runtime: AddInstance dials new
// servers into the rotation and RemoveInstance drains and disconnects
// running ones, so a control plane (see internal/autopilot) can reconcile
// every model's fleet toward a fresh plan without dropping in-flight
// queries.
//
// The controller is sharded per model: each group has its own lock, its
// own scheduler goroutine, and its own kick channel, so one model's
// matching round (the policy's Assign can be cubic in the queue depth)
// never stalls another model's Submit, completions, or Stats, and a busy
// model cannot starve an idle one. Counters are atomic, so accounting
// never waits on a scheduling round.
type Controller struct {
	// TimeScale must match the instance servers' scale.
	TimeScale float64

	// groups and order are immutable after construction.
	groups map[string]*modelGroup
	order  []string // sorted model names: deterministic iteration

	// obs is the flight recorder: per-model stage histograms, sampled
	// trace rings, and the sampling policy. Always on — the stamps reuse
	// timestamps the serving path already takes, so recording costs a few
	// atomic adds per query and nothing allocates.
	obs *obs.Registry

	nextID    atomic.Int64
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// emptyHold is how long (ns) a group that lost all capacity parks its
	// queries waiting for capacity to return; 0 fails them immediately.
	emptyHold atomic.Int64

	// onComplete, when set, observes every delivered QueryResult.
	onComplete atomic.Pointer[completionFunc]
	// onDown, when set, observes every instance eviction (death outside an
	// orderly RemoveInstance).
	onDown atomic.Pointer[instanceDownFunc]
	// augment, when set, merges front-end accounting into Stats snapshots.
	augment atomic.Pointer[func(*Stats)]
}

type completionFunc = func(model string, batch int, res QueryResult)

type instanceDownFunc = func(model, typeName, addr string, cause error)

// GroupSpec describes one served model's scheduling group: the
// query-distribution policy deciding dispatches (it sees times in model
// milliseconds) and the latency predictor used for busy-time tracking.
type GroupSpec struct {
	Policy  sim.Distributor
	Predict func(typeName string, batch int) float64
}

// modelGroup is one model's serving shard: its policy, its slice of the
// fleet, its central queue, and its scheduler goroutine's kick channel.
// The mutable fleet state is guarded by the group's own mu; the counters
// are atomic so Submit accounting, completions, and Stats never contend
// with a scheduling round. The scratch slices are reused across rounds by
// the group's scheduler goroutine (under mu), taking a round to near-zero
// allocations.
type modelGroup struct {
	model    string
	policy   sim.Distributor
	observer sim.Observer // policy's Observe, nil if not implemented
	predict  func(typeName string, batch int) float64
	kick     chan struct{}
	obs      *obs.ModelObs // the model's flight-recorder shard

	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64

	mu        sync.Mutex
	instances []*remoteInstance
	waiting   []*pendingQuery
	// ring is the session-affinity hash ring over the non-draining
	// instances; rebuilt on every membership or draining change.
	ring affinityRing
	// holdTimer bounds an empty-hold window: it is armed when the group
	// loses its last instance while queries wait (see SetEmptyHold) and
	// stopped when capacity returns.
	holdTimer *time.Timer

	// Round scratch, reused by the scheduler goroutine under mu.
	qviews    []sim.QueryView
	iviews    []sim.InstanceView
	active    []*remoteInstance
	queuedBuf []int
	taken     []bool
	dispatch  []dispatchItem
	flushSet  []*remoteInstance
	// expired collects deadline-exceeded queries swept out of the queue
	// by a round; they are failed outside the lock by groupRound.
	expired []*pendingQuery
}

// rebuildRingLocked re-derives the session-affinity ring from the
// group's non-draining instances; call after any membership or draining
// change. Callers hold g.mu.
func (g *modelGroup) rebuildRingLocked() { g.ring.rebuild(g.instances) }

// wake nudges the group's scheduler without blocking.
func (g *modelGroup) wake() {
	select {
	case g.kick <- struct{}{}:
	default:
	}
}

// remoteInstance is one dialed instance server. Mutable fields are
// guarded by the owning group's mu; the wire connection has its own write
// lock, so network writes happen outside the group lock.
type remoteInstance struct {
	model     string
	typeName  string
	addr      string
	wc        *wireConn
	busyUntil time.Time
	// pending holds dispatched-but-unfinished queries in dispatch order;
	// byID indexes them for O(1) reply correlation.
	pending []*pendingQuery
	byID    map[int64]*pendingQuery
	// draining excludes the instance from new dispatches; once pending
	// empties, RemoveInstance closes the connection and drops it.
	draining   bool
	dispatched int64
	completed  int64
	// busyMS accumulates ground-truth service time (model ms) from replies.
	busyMS float64
	// needsFlush marks the instance as touched by the current dispatch
	// burst; only the group's scheduler goroutine uses it.
	needsFlush bool
	// serveHist and typeID are the flight recorder's per-instance-type
	// hooks, resolved once at dial time so the reply path records with a
	// cached pointer and stores an interned int.
	serveHist *obs.Histogram
	typeID    int
}

type pendingQuery struct {
	id       int64
	model    string
	batch    int
	enqueued time.Time
	// dispatched is stamped with the scheduling round's clock read when
	// the query leaves the central queue (re-stamped on redispatch).
	dispatched time.Time
	// traced marks a sampled query: it carries the trace flag on the wire
	// and writes a ring record on completion.
	traced bool
	// session, when nonzero, is the affinity hash: the dispatch loop
	// prefers the ring-assigned instance while it is under the load bound.
	session uint64
	// deadline, when nonzero, bounds how long the query may sit in the
	// central queue before it is failed with DeadlineExceededMsg.
	deadline time.Time
	done     chan QueryResult
	// completed flips exactly once: the first completion path (reply,
	// eviction, close, failed write) wins the delivery.
	completed atomic.Bool
}

// QueryResult reports one served query.
type QueryResult struct {
	// Model is the model the query was submitted for.
	Model string
	// Batch is the query's batch size.
	Batch int
	// LatencyMS is the end-to-end latency in model milliseconds
	// (wall-clock divided by TimeScale).
	LatencyMS float64
	// Instance is the serving instance type.
	Instance string
	// Err is non-nil if the query failed (connection loss, server error).
	Err error
}

// InstanceStats is one connected instance's cumulative accounting.
type InstanceStats struct {
	// Model is the model the instance announced in the handshake.
	Model string `json:"model"`
	// TypeName is the instance type announced in the handshake.
	TypeName string `json:"type_name"`
	// Addr is the dialed server address.
	Addr string `json:"addr"`
	// Dispatched counts queries sent to the instance.
	Dispatched int64 `json:"dispatched"`
	// Completed counts successful replies.
	Completed int64 `json:"completed"`
	// Pending is the current dispatched-but-unfinished depth.
	Pending int `json:"pending"`
	// BusyMS is the accumulated ground-truth service time in model ms.
	BusyMS float64 `json:"busy_ms"`
	// Draining marks an instance being removed (no new dispatches).
	Draining bool `json:"draining"`
}

// ModelStats is one model group's accounting snapshot.
type ModelStats struct {
	// Waiting is the model's central queue depth.
	Waiting int `json:"waiting"`
	// Submitted counts every query accepted for the model.
	Submitted int64 `json:"submitted"`
	// Completed counts queries delivered without error.
	Completed int64 `json:"completed"`
	// Failed counts queries delivered with an error.
	Failed int64 `json:"failed"`
	// Instances snapshots the model's instances in fleet order.
	Instances []InstanceStats `json:"instances"`
}

// IngressStats is one model's external front-end accounting — queries
// that arrived over an ingress endpoint rather than from an in-process
// submitter. An ingress front-end (internal/ingress) merges its counters
// into every Stats snapshot through SetStatsAugmenter, so kairosctl and
// the autopilot admin endpoint see one observability surface for the
// whole serving path.
type IngressStats struct {
	// Submitted counts queries the front-end admitted into the
	// controller; HTTP and TCP split it by transport.
	Submitted int64 `json:"submitted"`
	HTTP      int64 `json:"http"`
	TCP       int64 `json:"tcp"`
	// Rejected counts queries pushed back by the bounded admission queue
	// (HTTP 429 / binary NACK). They never reached the controller.
	Rejected int64 `json:"rejected"`
	// RateLimited counts queries refused by per-client rate limiting,
	// separately from queue rejections. They never reached the controller.
	RateLimited int64 `json:"rate_limited,omitempty"`
	// Completed and Failed count delivered outcomes of admitted queries.
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	// Queue is the current admitted-but-unfinished depth.
	Queue int64 `json:"queue"`
}

// Stats is a point-in-time snapshot of the controller's accounting — the
// shared observability surface read by kairosctl and the autopilot. The
// top-level counters aggregate every model; Models carries the per-model
// sections.
type Stats struct {
	// Waiting is the total central queue depth across models.
	Waiting int `json:"waiting"`
	// Submitted counts every query accepted by Submit.
	Submitted int64 `json:"submitted"`
	// Completed counts queries delivered without error.
	Completed int64 `json:"completed"`
	// Failed counts queries delivered with an error.
	Failed int64 `json:"failed"`
	// Models maps each served model to its group's accounting.
	Models map[string]ModelStats `json:"models"`
	// Instances snapshots every instance in model-then-fleet order.
	Instances []InstanceStats `json:"instances"`
	// Ingress carries per-model front-end accounting when an ingress is
	// attached (see SetStatsAugmenter); nil otherwise.
	Ingress map[string]IngressStats `json:"ingress,omitempty"`
	// IngressUnrouted counts front-door rejections that never resolved to
	// a model section — unknown-model submissions and unauthenticated
	// clients — so /stats accounts for every arrival, not just the routed
	// ones. Set by the ingress augmenter; 0 without one.
	IngressUnrouted int64 `json:"ingress_unrouted,omitempty"`
}

// NewController dials the instance servers and starts the scheduling loop
// for a single-model deployment — the one-group case of NewMultiController.
func NewController(model string, policy sim.Distributor, timeScale float64, predict func(string, int) float64, addrs []string) (*Controller, error) {
	return NewMultiController(map[string]GroupSpec{model: {Policy: policy, Predict: predict}}, timeScale, addrs)
}

// NewMultiController dials the instance servers, assigns each to the
// scheduler group of the model its banner announces, and starts one
// scheduler goroutine per group. Every announced model must have a group;
// an instance announcing an unexpected model is rejected (wrong-model
// instances must never silently serve another model's queries).
func NewMultiController(groups map[string]GroupSpec, timeScale float64, addrs []string) (*Controller, error) {
	if len(groups) == 0 {
		return nil, errors.New("server: controller needs at least one model group")
	}
	if timeScale <= 0 {
		timeScale = 1
	}
	if len(addrs) == 0 {
		return nil, errors.New("server: controller needs at least one instance address")
	}
	c := &Controller{
		TimeScale: timeScale,
		groups:    make(map[string]*modelGroup, len(groups)),
		closed:    make(chan struct{}),
	}
	for model, spec := range groups {
		if model == "" {
			return nil, errors.New("server: model group with an empty model name")
		}
		if spec.Policy == nil || spec.Predict == nil {
			return nil, fmt.Errorf("server: model group %s needs a policy and a predictor", model)
		}
		g := &modelGroup{model: model, policy: spec.Policy, predict: spec.Predict, kick: make(chan struct{}, 1)}
		g.observer, _ = spec.Policy.(sim.Observer)
		c.groups[model] = g
		c.order = append(c.order, model)
	}
	sort.Strings(c.order)
	c.obs = obs.NewRegistry(0, c.order...)
	for _, model := range c.order {
		c.groups[model].obs = c.obs.Model(model)
	}
	for _, addr := range addrs {
		ri, err := c.dialInstance(addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		g := c.groups[ri.model]
		g.mu.Lock()
		g.instances = append(g.instances, ri)
		g.rebuildRingLocked()
		g.mu.Unlock()
		c.wg.Add(1)
		go c.readLoop(ri)
	}
	for _, model := range c.order {
		c.wg.Add(1)
		go c.groupLoop(c.groups[model])
	}
	return c, nil
}

// dialInstance connects and handshakes with one instance server,
// validating the announced model against the served set and negotiating
// the wire version (binary when the instance supports it, JSON fallback
// for legacy instances).
func (c *Controller) dialInstance(addr string) (*remoteInstance, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: dialing %s: %w", addr, err)
	}
	wc := newWireConn(conn)
	var hello Hello
	if err := ReadFrame(wc.br, &hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: handshake with %s: %w", addr, err)
	}
	if _, ok := c.groups[hello.Model]; !ok {
		conn.Close()
		return nil, fmt.Errorf("server: instance %s at %s announces model %q, controller serves %v",
			hello.TypeName, addr, hello.Model, c.order)
	}
	if hello.Proto >= ProtoBinary {
		// Ack the highest version both sides speak; a ProtoBinary-only
		// instance never sees the traced frame kinds.
		ack := min(hello.Proto, ProtoTraced)
		if err := wc.writeJSON(HelloAck{Proto: ack}); err != nil {
			conn.Close()
			return nil, fmt.Errorf("server: handshake with %s: %w", addr, err)
		}
		wc.binary = true
		wc.proto = ack
	}
	mo := c.obs.Model(hello.Model)
	return &remoteInstance{
		model:     hello.Model,
		typeName:  hello.TypeName,
		addr:      addr,
		wc:        wc,
		busyUntil: time.Now(),
		byID:      make(map[int64]*pendingQuery),
		serveHist: mo.ServeHist(hello.TypeName),
		typeID:    c.obs.Intern(hello.TypeName),
	}, nil
}

// Obs exposes the controller's flight recorder: per-model stage
// histograms, per-instance-type serve histograms, and the sampled
// trace rings (see internal/obs).
func (c *Controller) Obs() *obs.Registry { return c.obs }

// SetTraceSampling retunes trace sampling at runtime: trace ~1/every
// queries (0 disables, 1 traces everything), deterministically keyed by
// seed — the same seed always traces the same query IDs.
func (c *Controller) SetTraceSampling(every, seed uint64) { c.obs.SetSampling(every, seed) }

// Models lists the served model names in sorted order.
func (c *Controller) Models() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// AddInstance dials one more instance server into the rotation of the
// model its banner announces and returns that type name. Safe to call
// while traffic is flowing.
func (c *Controller) AddInstance(addr string) (string, error) {
	ri, err := c.dialInstance(addr)
	if err != nil {
		return "", err
	}
	g := c.groups[ri.model]
	g.mu.Lock()
	select {
	case <-c.closed:
		g.mu.Unlock()
		ri.wc.close()
		return "", errors.New("server: controller closed")
	default:
	}
	g.instances = append(g.instances, ri)
	g.rebuildRingLocked()
	if g.holdTimer != nil {
		// Capacity is back; held queries are dispatchable again.
		g.holdTimer.Stop()
		g.holdTimer = nil
	}
	c.wg.Add(1)
	g.mu.Unlock()
	go c.readLoop(ri)
	g.wake()
	return ri.typeName, nil
}

// RemoveInstance drains and disconnects one instance of the given type
// from the model's group: the instance stops receiving new dispatches
// immediately, every already-dispatched query completes and is delivered
// normally, and only then is the connection closed and the instance
// dropped from the fleet. Among removable candidates it picks the one with
// the shallowest backlog. It blocks until the drain finishes and returns
// the removed instance's dialed address so launchers can stop the matching
// server.
func (c *Controller) RemoveInstance(model, typeName string) (string, error) {
	g, ok := c.groups[model]
	if !ok {
		return "", fmt.Errorf("server: controller does not serve model %q (have %v)", model, c.order)
	}
	g.mu.Lock()
	var target *remoteInstance
	for _, ri := range g.instances {
		if ri.typeName != typeName || ri.draining {
			continue
		}
		if target == nil || len(ri.pending) < len(target.pending) {
			target = ri
		}
	}
	if target == nil {
		g.mu.Unlock()
		return "", fmt.Errorf("server: no removable instance of type %s serving %s", typeName, model)
	}
	target.draining = true
	g.rebuildRingLocked()
	g.mu.Unlock()
	g.wake() // re-dispatch anything the policy was routing here

	// Drain: dispatched queries finish through the normal reply path.
	for {
		g.mu.Lock()
		depth := len(target.pending)
		g.mu.Unlock()
		if depth == 0 {
			break
		}
		select {
		case <-c.closed:
			return "", errors.New("server: controller closed during drain")
		case <-time.After(2 * time.Millisecond):
		}
	}
	// Drop it from the fleet before closing the connection: the readLoop's
	// eviction path must see an already-removed instance, or this orderly
	// removal would race it into reporting a fault.
	g.mu.Lock()
	dropLocked(g, target)
	orphans := c.capacityLostLocked(g)
	g.mu.Unlock()
	target.wc.close()
	for _, q := range orphans {
		c.deliver(q, QueryResult{Err: fmt.Errorf("server: model %s has no serving capacity", model)})
	}
	return target.addr, nil
}

// RemoveInstanceAddr is RemoveInstance keyed by instance address — the
// drain-ahead-of-death path a preemption notice takes, where the doomed
// instance is known exactly rather than picked by type. It drains and
// disconnects the instance at addr, blocking until its backlog is
// delivered, and reports the instance's model and type so the caller can
// replan around the hole. died reports that the instance died mid-drain
// (e.g. a preemption deadline or another fault closed its connection
// first): the eviction path already redispatched its undelivered queries,
// reported the fault, and closed the connection, so the caller should
// fall back to fault healing instead of an orderly stop.
func (c *Controller) RemoveInstanceAddr(addr string) (model, typeName string, died bool, err error) {
	var g *modelGroup
	var target *remoteInstance
	for _, name := range c.order {
		grp := c.groups[name]
		grp.mu.Lock()
		for _, ri := range grp.instances {
			if ri.addr == addr && !ri.draining {
				g, target = grp, ri
				target.draining = true
				grp.rebuildRingLocked()
				break
			}
		}
		grp.mu.Unlock()
		if target != nil {
			break
		}
	}
	if target == nil {
		return "", "", false, fmt.Errorf("server: no removable instance at %s", addr)
	}
	g.wake() // re-dispatch anything the policy was routing here

	// Drain: dispatched queries finish through the normal reply path. An
	// eviction empties the backlog too (by stranding it for redispatch),
	// so a mid-drain death also ends this loop.
	for {
		g.mu.Lock()
		depth := len(target.pending)
		g.mu.Unlock()
		if depth == 0 {
			break
		}
		select {
		case <-c.closed:
			return "", "", false, errors.New("server: controller closed during drain")
		case <-time.After(2 * time.Millisecond):
		}
	}
	// Drop before closing, exactly like RemoveInstance — unless the
	// eviction path got here first: dropLocked reporting a non-member is
	// how the lost race surfaces, and eviction has then already handled
	// orphans and closed the connection.
	g.mu.Lock()
	member := dropLocked(g, target)
	var orphans []*pendingQuery
	if member {
		orphans = c.capacityLostLocked(g)
	}
	g.mu.Unlock()
	if member {
		target.wc.close()
	}
	for _, q := range orphans {
		c.deliver(q, QueryResult{Err: fmt.Errorf("server: model %s has no serving capacity", target.model)})
	}
	return target.model, target.typeName, !member, nil
}

// dropLocked removes the instance from its group, reporting whether it
// was still a fleet member; callers hold g.mu.
func dropLocked(g *modelGroup, target *remoteInstance) bool {
	for i, ri := range g.instances {
		if ri == target {
			g.instances = append(g.instances[:i], g.instances[i+1:]...)
			return true
		}
	}
	return false
}

// capacityLostLocked handles a group that may have just lost its last
// instance. Without an empty-hold window the waiting queries are returned
// for orphan failure (with nothing left to dispatch to they would hang
// forever). With one (SetEmptyHold), they stay parked so a control plane
// has a bounded window to relaunch capacity after a fault; the hold timer
// fails them if none arrives. The returned queries must be failed with
// deliver outside the lock. Callers hold g.mu.
func (c *Controller) capacityLostLocked(g *modelGroup) []*pendingQuery {
	if len(g.instances) > 0 || len(g.waiting) == 0 {
		return nil
	}
	if c.emptyHold.Load() > 0 {
		c.armHoldLocked(g)
		return nil
	}
	orphans := g.waiting
	g.waiting = nil
	return orphans
}

// armHoldLocked starts the group's empty-hold timer if the hold window is
// configured and no timer is already running. Callers hold g.mu.
func (c *Controller) armHoldLocked(g *modelGroup) {
	hold := time.Duration(c.emptyHold.Load())
	if hold <= 0 || g.holdTimer != nil {
		return
	}
	g.holdTimer = time.AfterFunc(hold, func() { c.holdExpired(g) })
}

// holdExpired fires when an empty-hold window elapses: if the group still
// has no instances, the parked queries are failed — the hold bounds how
// long an admitted query can wait for capacity to return, it is not a
// license to hang forever.
func (c *Controller) holdExpired(g *modelGroup) {
	g.mu.Lock()
	g.holdTimer = nil
	if len(g.instances) > 0 {
		// Capacity came back between the timer firing and the lock; the
		// scheduler owns the queue again.
		g.mu.Unlock()
		return
	}
	orphans := g.waiting
	g.waiting = nil
	g.mu.Unlock()
	for _, q := range orphans {
		c.deliver(q, QueryResult{Err: fmt.Errorf("server: model %s has no serving capacity (hold window expired)", g.model)})
	}
}

// SetEmptyHold configures how long a model group that has lost every
// instance parks its waiting and newly submitted queries before failing
// them. The default (0) keeps the historical fail-fast behavior. A control
// plane that relaunches dead instances (internal/autopilot fault healing)
// sets this to its expected recovery time so the window between an
// instance crash and its replacement does not drop admitted queries.
func (c *Controller) SetEmptyHold(d time.Duration) { c.emptyHold.Store(int64(d)) }

// InstanceTypes lists the connected instance types in model-then-fleet
// order, including draining ones.
func (c *Controller) InstanceTypes() []string {
	var out []string
	for _, model := range c.order {
		g := c.groups[model]
		g.mu.Lock()
		for _, ri := range g.instances {
			out = append(out, ri.typeName)
		}
		g.mu.Unlock()
	}
	return out
}

// InstanceCounts returns the number of non-draining instances per type
// across every model — the aggregate fleet the schedulers can use.
func (c *Controller) InstanceCounts() map[string]int {
	out := make(map[string]int)
	for _, model := range c.order {
		g := c.groups[model]
		g.mu.Lock()
		for _, ri := range g.instances {
			if !ri.draining {
				out[ri.typeName]++
			}
		}
		g.mu.Unlock()
	}
	return out
}

// ModelInstanceCounts returns the number of non-draining instances per
// type serving one model — the fleet that model's scheduler can use.
func (c *Controller) ModelInstanceCounts(model string) map[string]int {
	out := make(map[string]int)
	g, ok := c.groups[model]
	if !ok {
		return out
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, ri := range g.instances {
		if !ri.draining {
			out[ri.typeName]++
		}
	}
	return out
}

// Stats snapshots the controller's accounting across every model group.
// Counters are read completed-then-failed-then-submitted, so the invariant
// completed + failed <= submitted holds in every snapshot (submitted only
// grows, and every completion was submitted first).
func (c *Controller) Stats() Stats {
	s := Stats{Models: make(map[string]ModelStats, len(c.order))}
	for _, model := range c.order {
		g := c.groups[model]
		ms := ModelStats{
			Completed: g.completed.Load(),
			Failed:    g.failed.Load(),
		}
		ms.Submitted = g.submitted.Load()
		g.mu.Lock()
		ms.Waiting = len(g.waiting)
		ms.Instances = make([]InstanceStats, len(g.instances))
		for i, ri := range g.instances {
			ms.Instances[i] = InstanceStats{
				Model:      ri.model,
				TypeName:   ri.typeName,
				Addr:       ri.addr,
				Dispatched: ri.dispatched,
				Completed:  ri.completed,
				Pending:    len(ri.pending),
				BusyMS:     ri.busyMS,
				Draining:   ri.draining,
			}
		}
		g.mu.Unlock()
		s.Models[model] = ms
		s.Waiting += ms.Waiting
		s.Submitted += ms.Submitted
		s.Completed += ms.Completed
		s.Failed += ms.Failed
		s.Instances = append(s.Instances, ms.Instances...)
	}
	if fn := c.augment.Load(); fn != nil {
		(*fn)(&s)
	}
	return s
}

// OutstandingQuery names one admitted-but-undelivered query: which
// model, where it is stuck ("queued" in the central queue or
// "dispatched" to an instance), and how long it has been in flight.
// The ID doubles as the trace ID, so a sampled query's full stage
// breakdown is one /tracez lookup away.
type OutstandingQuery struct {
	Model string `json:"model"`
	ID    int64  `json:"id"`
	Batch int    `json:"batch"`
	// Stage is the last recorded lifecycle stage: "queued" or "dispatched".
	Stage string `json:"stage"`
	// Instance is the dispatch target's type (dispatched queries only).
	Instance string `json:"instance,omitempty"`
	// AgeMS is time since enqueue in model milliseconds.
	AgeMS float64 `json:"age_ms"`
	// Traced marks a sampled query with a ring record to correlate.
	Traced bool `json:"traced"`
}

// OutstandingQueries snapshots every query the controller has accepted
// but not yet delivered, in model order. A drained fleet returns an
// empty slice; the soak checker uses this to name the exact stuck
// queries behind a zero-drop violation.
func (c *Controller) OutstandingQueries() []OutstandingQuery {
	now := time.Now()
	ageMS := func(enq time.Time) float64 {
		return float64(now.Sub(enq)) / float64(time.Millisecond) / c.TimeScale
	}
	var out []OutstandingQuery
	for _, model := range c.order {
		g := c.groups[model]
		g.mu.Lock()
		for _, q := range g.waiting {
			out = append(out, OutstandingQuery{
				Model: model, ID: q.id, Batch: q.batch, Stage: "queued",
				AgeMS: ageMS(q.enqueued), Traced: q.traced,
			})
		}
		for _, ri := range g.instances {
			for _, q := range ri.pending {
				out = append(out, OutstandingQuery{
					Model: model, ID: q.id, Batch: q.batch, Stage: "dispatched",
					Instance: ri.typeName, AgeMS: ageMS(q.enqueued), Traced: q.traced,
				})
			}
		}
		g.mu.Unlock()
	}
	return out
}

// SetStatsAugmenter registers fn, invoked on every Stats snapshot to
// merge front-end accounting (e.g. per-model ingress counters) into the
// controller's view. It must be fast and must not call back into the
// controller. nil unregisters.
func (c *Controller) SetStatsAugmenter(fn func(*Stats)) {
	if fn == nil {
		c.augment.Store(nil)
		return
	}
	c.augment.Store(&fn)
}

// SetOnInstanceDown installs a callback observing every instance eviction
// — a connection lost outside an orderly RemoveInstance, i.e. a crash,
// wedge-then-reset, or network cut. It runs outside the controller locks,
// after the dead instance's queries have been requeued, and must not block
// for long. A control plane uses it to reap the dead process and trigger
// an immediate replan instead of waiting for the next drift tick.
func (c *Controller) SetOnInstanceDown(fn func(model, typeName, addr string, cause error)) {
	if fn == nil {
		c.onDown.Store(nil)
		return
	}
	c.onDown.Store(&fn)
}

// SetOnComplete installs a callback observing every delivered QueryResult
// (successes and failures; check res.Err). It runs outside the controller
// locks and must not block for long — it is on the completion path.
func (c *Controller) SetOnComplete(fn func(model string, batch int, res QueryResult)) {
	if fn == nil {
		c.onComplete.Store(nil)
		return
	}
	c.onComplete.Store(&fn)
}

// queryPool recycles pendingQuery structs (and their result channels) for
// the synchronous SubmitWait path, where the caller provably consumed the
// result before the query is pooled again. Asynchronous Submit hands its
// channel to the caller and cannot recycle.
var queryPool = sync.Pool{New: func() any {
	return &pendingQuery{done: make(chan QueryResult, 1)}
}}

// Submit enqueues one query for the named model and returns a channel
// delivering its result. Unknown models, models whose group currently has
// no serving capacity (every instance removed or draining — reachable
// when the shared-budget planner starves a model), and submissions after
// Close all fail immediately instead of hanging — except that a
// configured empty-hold window (SetEmptyHold) parks capacity-less
// submissions for bounded fault recovery instead. Every accepted or
// rejected submission is accounted, so completed + failed never exceeds
// submitted on any path.
func (c *Controller) Submit(model string, batch int) <-chan QueryResult {
	q := &pendingQuery{done: make(chan QueryResult, 1)}
	c.submit(model, batch, q, SubmitOptions{})
	return q.done
}

// SubmitOptions carry a query's optional routing hints: a session
// affinity hash (see SessionHash) and a dispatch deadline. The zero
// value means "no hints" on both.
type SubmitOptions struct {
	// SessionHash, when nonzero, asks the dispatch loop to prefer the
	// session's ring-assigned instance while it is under the bounded-load
	// cap. A hint, never a constraint: an overloaded or vanished
	// preferred instance falls back to the model's policy.
	SessionHash uint64
	// Deadline, when nonzero, bounds how long the query may wait in the
	// central queue; an expired query fails with DeadlineExceededMsg
	// instead of dispatching. Queries already dispatched are served.
	Deadline time.Time
}

// DeadlineExceededMsg is the exact error text a deadline expiry
// delivers, so front-ends and clients can classify it.
const DeadlineExceededMsg = "server: deadline exceeded"

var errDeadlineExceeded = errors.New(DeadlineExceededMsg)

// SubmitWait submits and blocks for the result. Unlike Submit it recycles
// the query bookkeeping, so a closed-loop submitter allocates nothing per
// query in steady state.
func (c *Controller) SubmitWait(model string, batch int) QueryResult {
	return c.SubmitWaitOpts(model, batch, SubmitOptions{})
}

// SubmitWaitOpts is SubmitWait with routing hints: the ingress front
// door's submit path for session-affine, deadline-bounded queries.
func (c *Controller) SubmitWaitOpts(model string, batch int, opts SubmitOptions) QueryResult {
	q := queryPool.Get().(*pendingQuery)
	c.submit(model, batch, q, opts)
	res := <-q.done
	// Every delivery path sends exactly once (the atomic claim in deliver)
	// and touches q only before the send, so after the receive the query
	// is provably idle and safe to recycle.
	q.completed.Store(false)
	queryPool.Put(q)
	return res
}

// submit enqueues q — freshly allocated or pooled — for the named model.
func (c *Controller) submit(model string, batch int, q *pendingQuery, opts SubmitOptions) {
	q.model, q.batch = model, batch
	q.traced = false // pooled queries carry the previous query's flag
	// Unconditional: pooled queries carry the previous query's hints.
	q.session, q.deadline = opts.SessionHash, opts.Deadline
	g, ok := c.groups[model]
	if !ok {
		c.deliver(q, QueryResult{
			Err: fmt.Errorf("server: controller does not serve model %q (have %v)", model, c.order)})
		return
	}
	// Reject out-of-range batches here: the scheduler would otherwise feed
	// them to the latency predictor, which panics outside the model's
	// calibrated range — an unvalidated Submit must fail its query, not
	// kill the model's scheduler goroutine.
	if batch < 1 || batch > models.MaxBatch {
		g.submitted.Add(1)
		c.deliver(q, QueryResult{Err: fmt.Errorf("server: batch %d outside [1,%d]", batch, models.MaxBatch)})
		return
	}
	g.mu.Lock()
	select {
	case <-c.closed:
		g.submitted.Add(1)
		g.mu.Unlock()
		c.deliver(q, QueryResult{Err: errors.New("server: controller closed")})
		return
	default:
	}
	capacity := false
	for _, ri := range g.instances {
		if !ri.draining {
			capacity = true
			break
		}
	}
	if !capacity {
		if c.emptyHold.Load() > 0 {
			// Hold instead of fail-fast: park the query in the central
			// queue and bound the wait with the hold timer — fault healing
			// is expected to bring capacity back within the window.
			if len(g.instances) == 0 {
				c.armHoldLocked(g)
			}
		} else {
			g.submitted.Add(1)
			g.mu.Unlock()
			c.deliver(q, QueryResult{Err: fmt.Errorf("server: model %s has no serving capacity", model)})
			return
		}
	}
	q.id = c.nextID.Add(1)
	q.enqueued = time.Now()
	q.traced = g.obs.Sampled(q.id)
	g.submitted.Add(1)
	g.waiting = append(g.waiting, q)
	g.mu.Unlock()
	if !q.deadline.IsZero() {
		// The scheduler loop only wakes on kicks; a query that can't
		// dispatch would outsleep its deadline without this one-shot
		// alarm. Firing after the query completed is a harmless spurious
		// round, so the timer is never cancelled.
		if d := time.Until(q.deadline); d > 0 {
			time.AfterFunc(d+time.Millisecond, g.wake)
		}
	}
	g.wake()
}

// deliver completes one query exactly once (atomic claim, no lock) and
// invokes the completion callback. q is not touched after the result is
// sent: the receiver may recycle it immediately (see SubmitWait).
func (c *Controller) deliver(q *pendingQuery, res QueryResult) {
	if !q.completed.CompareAndSwap(false, true) {
		return
	}
	res.Model = q.model
	res.Batch = q.batch
	if g, ok := c.groups[res.Model]; ok {
		if res.Err != nil {
			g.failed.Add(1)
			if q.traced {
				// Failed traced queries still leave a ring record (the
				// success path records in readLoop with full timings).
				rec := obs.TraceRecord{
					ID: q.id, StartUnixNano: q.enqueued.UnixNano(), Batch: q.batch,
					E2ENS: int64(time.Since(q.enqueued)), Err: true,
				}
				g.obs.Trace(&rec, -1)
			}
		} else {
			g.completed.Add(1)
		}
	}
	q.done <- res
	if cb := c.onComplete.Load(); cb != nil {
		(*cb)(res.Model, res.Batch, res)
	}
}

// Close shuts down the controller and fails outstanding queries, both the
// centrally-waiting and the dispatched-but-unfinished ones. Like every
// other completion path, the failures reach the onComplete observer.
func (c *Controller) Close() {
	c.closeOnce.Do(func() {
		close(c.closed)
		errClosed := errors.New("server: controller closed")
		for _, model := range c.order {
			g := c.groups[model]
			g.mu.Lock()
			if g.holdTimer != nil {
				g.holdTimer.Stop()
				g.holdTimer = nil
			}
			var inflight []dispatchItem
			for _, ri := range g.instances {
				ri.wc.close()
				for _, q := range ri.pending {
					inflight = append(inflight, dispatchItem{q: q, ri: ri})
				}
				ri.pending = nil
				clear(ri.byID)
			}
			waiting := g.waiting
			g.waiting = nil
			g.mu.Unlock()
			for _, d := range inflight {
				c.deliver(d.q, QueryResult{Err: errClosed, Instance: d.ri.typeName})
			}
			for _, q := range waiting {
				c.deliver(q, QueryResult{Err: errClosed})
			}
		}
	})
	c.wg.Wait()
}

// evict removes a dead instance from its group and requeues its in-flight
// queries at the head of the central queue for redispatch to surviving
// capacity. A query still in ri.pending has provably not been delivered
// (every delivery path removes it from pending under g.mu first), and the
// emulated inference is idempotent, so re-serving is always safe — an
// instance crash must not drop admitted queries. Draining is set first so
// no scheduling round re-dispatches to the corpse. If the group just lost
// its last instance the queue is either held (SetEmptyHold) or orphaned.
// The instance-down callback (SetOnInstanceDown) fires last, outside the
// locks, so a control plane can reap the process and heal the fleet.
func (c *Controller) evict(ri *remoteInstance, cause error) {
	g := c.groups[ri.model]
	g.mu.Lock()
	ri.draining = true
	stranded := ri.pending
	ri.pending = nil
	clear(ri.byID)
	// An instance already dropped by RemoveInstance died of its own close;
	// that is an orderly removal, not a fault worth reporting.
	wasMember := dropLocked(g, ri)
	g.rebuildRingLocked()
	if len(stranded) > 0 {
		// Head of the queue, original enqueue times intact: redispatched
		// queries keep their accumulated wait for latency accounting and
		// scheduling priority.
		g.waiting = append(stranded, g.waiting...)
	}
	orphans := c.capacityLostLocked(g)
	g.mu.Unlock()
	ri.wc.close()
	for _, q := range orphans {
		c.deliver(q, QueryResult{Err: fmt.Errorf("server: model %s has no serving capacity (instance %s lost: %v)", ri.model, ri.typeName, cause)})
	}
	g.wake()
	if cb := c.onDown.Load(); cb != nil && wasMember {
		(*cb)(ri.model, ri.typeName, ri.addr, cause)
	}
}

// groupLoop is one model's scheduler goroutine: it runs that group's
// distribution rounds whenever kicked, independently of every other model.
func (c *Controller) groupLoop(g *modelGroup) {
	defer c.wg.Done()
	for {
		select {
		case <-c.closed:
			return
		case <-g.kick:
			// Yield once before the round so concurrently-runnable
			// submitters and reply readers get to extend the queue first:
			// a round over a burst coalesces its dispatch writes, while a
			// round per query pays a syscall each. Costs nothing when the
			// run queue is empty.
			runtime.Gosched()
			c.groupRound(g)
		}
	}
}

// dispatchItem pairs a dispatched query with its target and the busy-time
// reservation taken for it, so a failed write can undo the reservation.
// id and batch are captured under the group lock while the query is
// provably live: once the round's lock is released the query may complete
// through another path and be recycled, so its fields must not be re-read.
type dispatchItem struct {
	q       *pendingQuery
	ri      *remoteInstance
	id      int64
	batch   int
	traced  bool
	reserve time.Duration
}

// groupRound runs one distribution round for one group and performs the
// network writes outside the lock. Writes to the same instance are
// coalesced: every frame of the burst is queued into the instance's
// buffered writer and flushed once — one syscall per instance per round.
func (c *Controller) groupRound(g *modelGroup) {
	g.mu.Lock()
	dispatch := c.groupRoundLocked(g, time.Now())
	g.mu.Unlock()
	// Deadline expiries swept by the round fail outside the lock; only
	// the group's scheduler goroutine touches the expired scratch.
	if len(g.expired) > 0 {
		for i, q := range g.expired {
			c.deliver(q, QueryResult{Err: errDeadlineExceeded})
			g.expired[i] = nil
		}
		g.expired = g.expired[:0]
	}
	if len(dispatch) == 0 {
		return
	}
	flush := g.flushSet[:0]
	for _, d := range dispatch {
		if err := d.ri.wc.queueRequest(Request{ID: d.id, Model: g.model, Batch: d.batch, Trace: d.traced}); err != nil {
			c.undoDispatch(g, d, err)
			continue
		}
		if !d.ri.needsFlush {
			d.ri.needsFlush = true
			flush = append(flush, d.ri)
		}
	}
	for _, ri := range flush {
		ri.needsFlush = false
		if err := ri.wc.flush(); err != nil {
			// The whole burst queued to this instance failed to reach it.
			for _, d := range dispatch {
				if d.ri == ri {
					c.undoDispatch(g, d, err)
				}
			}
		}
	}
	// Drop the burst's query and instance pointers from the reusable
	// scratch: an idle group must not pin delivered (possibly recycled)
	// queries or removed instances until its next round.
	for i := range dispatch {
		dispatch[i] = dispatchItem{}
	}
	g.dispatch = dispatch[:0]
	for i := range flush {
		flush[i] = nil
	}
	g.flushSet = flush[:0]
}

// undoDispatch rolls back one failed dispatch write: the query leaves the
// instance's pending set, the dispatch count reverts, and the busy-time
// reservation groupRoundLocked took is undone — the policy must not see
// phantom busy time on a flaky instance. The query goes back to the head
// of the central queue instead of failing: a write error means the
// connection is broken (the read side will evict the instance momentarily)
// and an admitted query must survive a flaky instance. The instance is
// marked draining so the next round routes around it rather than spinning
// on the dead connection. A query already completed through another path
// (reply, eviction, close) has left byID and is left alone; the identity
// check also keeps a recycled pendingQuery safe.
func (c *Controller) undoDispatch(g *modelGroup, d dispatchItem, cause error) {
	_ = cause // recorded by the eviction that follows the broken write
	g.mu.Lock()
	if d.ri.byID[d.id] != d.q {
		g.mu.Unlock()
		return
	}
	delete(d.ri.byID, d.id)
	for k, p := range d.ri.pending {
		if p == d.q {
			d.ri.pending = append(d.ri.pending[:k], d.ri.pending[k+1:]...)
			break
		}
	}
	d.ri.dispatched--
	d.ri.busyUntil = d.ri.busyUntil.Add(-d.reserve)
	d.ri.draining = true
	g.rebuildRingLocked()
	g.waiting = append([]*pendingQuery{d.q}, g.waiting...)
	g.mu.Unlock()
	g.wake()
}

// takeLocked dispatches one query to one instance: the busy-time
// reservation, pending/byID bookkeeping, and flight-recorder stamp every
// dispatch path shares. Callers hold g.mu.
func (c *Controller) takeLocked(g *modelGroup, q *pendingQuery, ri *remoteInstance, now time.Time) dispatchItem {
	service := g.predict(ri.typeName, q.batch)
	scaled := time.Duration(service * c.TimeScale * float64(time.Millisecond))
	if ri.busyUntil.Before(now) {
		ri.busyUntil = now
	}
	ri.busyUntil = ri.busyUntil.Add(scaled)
	ri.pending = append(ri.pending, q)
	ri.byID[q.id] = q
	ri.dispatched++
	// Flight-recorder stamp: the round's clock read doubles as the
	// dispatch timestamp — scheduler wait is enqueue → here.
	q.dispatched = now
	g.obs.Record(obs.StageQueue, now.Sub(q.enqueued))
	return dispatchItem{q: q, ri: ri, id: q.id, batch: q.batch, traced: q.traced, reserve: scaled}
}

// groupRoundLocked runs one model group's dispatch round: sweep expired
// deadlines, dispatch session-affine queries to their ring-preferred
// instances, then build the policy views over what remains and collect
// the policy's assignments. Draining instances are invisible to both
// passes, so a removal never receives new work. The view and dispatch
// slices are the group's reusable scratch — a steady-state round
// allocates nothing. Callers hold g.mu.
func (c *Controller) groupRoundLocked(g *modelGroup, now time.Time) []dispatchItem {
	if len(g.waiting) == 0 {
		return nil
	}
	// Deadline sweep: expired queries leave the queue before any
	// dispatch decision — it runs even with zero capacity, so a deadline
	// bounds an empty-hold park too. The common all-alive case is a
	// single scan; the compaction pass only runs when something expired.
	nexp := 0
	for _, q := range g.waiting {
		if !q.deadline.IsZero() && now.After(q.deadline) {
			nexp++
		}
	}
	if nexp > 0 {
		next := g.waiting[:0]
		for _, q := range g.waiting {
			if !q.deadline.IsZero() && now.After(q.deadline) {
				g.expired = append(g.expired, q)
			} else {
				next = append(next, q)
			}
		}
		for i := len(next); i < len(g.waiting); i++ {
			g.waiting[i] = nil
		}
		g.waiting = next
		if len(g.waiting) == 0 {
			return nil
		}
	}
	active := g.active[:0]
	for _, ri := range g.instances {
		if !ri.draining {
			active = append(active, ri)
		}
	}
	g.active = active
	if len(active) == 0 {
		return nil
	}
	toModelMS := func(d time.Duration) float64 {
		if d < 0 {
			return 0
		}
		return float64(d) / float64(time.Millisecond) / c.TimeScale
	}
	if cap(g.taken) < len(g.waiting) {
		g.taken = make([]bool, len(g.waiting))
	}
	taken := g.taken[:len(g.waiting)]
	for i := range taken {
		taken[i] = false
	}
	dispatch := g.dispatch[:0]
	ntaken := 0
	// Affinity pass: session-keyed queries try their ring-preferred
	// instance first, under the bounded-load cap, before the policy sees
	// the queue. The pass updates pending and busy time as it takes, so
	// the policy's instance views include the affinity dispatches.
	if len(g.ring.entries) > 0 {
		backlog := 0
		for _, ri := range active {
			backlog += len(ri.pending)
		}
		for i, q := range g.waiting {
			if q.session == 0 {
				continue
			}
			ri := g.ring.pick(q.session, affinityBound(backlog, len(active)))
			if ri == nil {
				continue // saturated ring: the policy routes this one
			}
			taken[i] = true
			ntaken++
			backlog++
			dispatch = append(dispatch, c.takeLocked(g, q, ri, now))
		}
	}
	qviews := g.qviews[:0]
	for i, q := range g.waiting {
		if taken[i] {
			continue
		}
		// Index is the query's position in g.waiting (affinity-taken
		// entries are skipped but keep their slots, so indices stay
		// stable); ID carries the stable arrival sequence number that
		// partitioned policies key on across scheduling rounds.
		qviews = append(qviews, sim.QueryView{Index: i, ID: int(q.id), Batch: q.batch, WaitMS: toModelMS(now.Sub(q.enqueued))})
	}
	g.qviews = qviews
	// One backing array serves every instance's QueuedBatches view; size it
	// upfront so the per-instance subslices never reallocate apart.
	total := 0
	for _, ri := range active {
		if n := len(ri.pending) - 1; n > 0 {
			total += n
		}
	}
	if cap(g.queuedBuf) < total {
		g.queuedBuf = make([]int, 0, total)
	}
	qb := g.queuedBuf[:0]
	iviews := g.iviews[:0]
	for i, ri := range active {
		start := len(qb)
		// The head of pending is in flight; the rest are queued behind it.
		for k := 1; k < len(ri.pending); k++ {
			qb = append(qb, ri.pending[k].batch)
		}
		queued := qb[start:len(qb):len(qb)]
		if len(queued) == 0 {
			queued = nil
		}
		remaining := 0.0
		if len(ri.pending) > 0 {
			remaining = toModelMS(ri.busyUntil.Sub(now))
			if len(queued) > 0 {
				// busyUntil covers the whole backlog; attribute the queued
				// service to QueuedBatches and keep the remainder here.
				for _, b := range queued {
					remaining -= g.predict(ri.typeName, b)
				}
				if remaining < 0 {
					remaining = 0
				}
			}
		}
		iviews = append(iviews, sim.InstanceView{Index: i, TypeName: ri.typeName, RemainingMS: remaining, QueuedBatches: queued})
	}
	g.iviews = iviews
	g.queuedBuf = qb
	if len(qviews) > 0 {
		assignments := g.policy.Assign(toModelMS(time.Duration(now.UnixNano())), qviews, iviews)
		for _, a := range assignments {
			if a.Query < 0 || a.Query >= len(g.waiting) || a.Instance < 0 || a.Instance >= len(active) || taken[a.Query] {
				continue
			}
			taken[a.Query] = true
			ntaken++
			dispatch = append(dispatch, c.takeLocked(g, g.waiting[a.Query], active[a.Instance], now))
		}
	}
	g.dispatch = dispatch
	if ntaken > 0 {
		next := g.waiting[:0]
		for i, q := range g.waiting {
			if !taken[i] {
				next = append(next, q)
			}
		}
		// Clear the compacted tail so completed queries are collectable.
		for i := len(next); i < len(g.waiting); i++ {
			g.waiting[i] = nil
		}
		g.waiting = next
	}
	// The active view is rebuilt each round; don't let it pin removed
	// instances while the group idles.
	for i := range active {
		active[i] = nil
	}
	g.active = active[:0]
	return dispatch
}

// readLoop consumes replies from one instance and completes queries.
// When the connection dies outside Close, the instance is evicted from
// the fleet and its in-flight queries are requeued for redispatch — so
// drains never wait on a dead instance and submitters never hang on a
// lost reply. Correlation is O(1) through the instance's byID index.
func (c *Controller) readLoop(ri *remoteInstance) {
	defer c.wg.Done()
	g := c.groups[ri.model]
	var reply Reply // hoisted: &reply escapes, one reply per loop not per read
	for {
		reply = Reply{}
		if err := ri.wc.readReply(&reply); err != nil {
			select {
			case <-c.closed:
				// Close owns the cleanup of pending queries.
			default:
				c.evict(ri, err)
			}
			return
		}
		now := time.Now()
		g.mu.Lock()
		q := ri.byID[reply.ID]
		if q != nil {
			delete(ri.byID, reply.ID)
			// Instances serve in dispatch order, so the reply is almost
			// always for the head of pending.
			for k, p := range ri.pending {
				if p == q {
					ri.pending = append(ri.pending[:k], ri.pending[k+1:]...)
					break
				}
			}
			if q.completed.Load() {
				q = nil // already failed by Close or eviction
			}
		}
		if q != nil && reply.Err == "" {
			ri.completed++
			ri.busyMS += reply.ServiceMS
			// Ground-truth service feedback, exactly as the simulator
			// delivers it: online learners and query monitors train from
			// real completions too. Under g.mu so Observe never races
			// Assign (policies are not internally synchronized).
			if g.observer != nil {
				g.observer.Observe(ri.typeName, q.batch, reply.ServiceMS)
			}
		}
		g.mu.Unlock()
		if q == nil {
			continue // stale reply or already failed by Close
		}
		res := QueryResult{
			LatencyMS: float64(now.Sub(q.enqueued)) / float64(time.Millisecond) / c.TimeScale,
			Instance:  ri.typeName,
		}
		if reply.Err != "" {
			res.Err = errors.New(reply.Err)
		} else {
			// Flight-recorder stamps, reusing this read's clock sample: a
			// few atomic adds per completion, a ring write for the sampled.
			// Failure timings are excluded so stage histograms reflect
			// serving latency, not eviction timing; failed traced queries
			// get their ring record in deliver.
			e2e := now.Sub(q.enqueued)
			flight := now.Sub(q.dispatched)
			serve := time.Duration(reply.ServiceMS * c.TimeScale * float64(time.Millisecond))
			g.obs.Record(obs.StageFlight, flight)
			g.obs.Record(obs.StageServe, serve)
			g.obs.Record(obs.StageE2E, e2e)
			ri.serveHist.Record(serve)
			if q.traced {
				if reply.Traced {
					g.obs.Record(obs.StageWait, time.Duration(reply.WaitNS))
				}
				rec := obs.TraceRecord{
					ID: q.id, StartUnixNano: q.enqueued.UnixNano(), Batch: q.batch,
					QueueNS:  int64(q.dispatched.Sub(q.enqueued)),
					FlightNS: int64(flight), WaitNS: reply.WaitNS,
					ServeNS: int64(serve), E2ENS: int64(e2e),
				}
				g.obs.Trace(&rec, ri.typeID)
			}
		}
		c.deliver(q, res)
		g.wake()
	}
}
