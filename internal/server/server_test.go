package server

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"kairos/internal/cloud"
	"kairos/internal/core"
	"kairos/internal/models"
	"kairos/internal/predictor"
	"kairos/internal/sim"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Request{ID: 42, Batch: 777}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	big := struct {
		Payload string `json:"payload"`
	}{Payload: strings.Repeat("x", MaxFrame+1)}
	if err := WriteFrame(&buf, big); err == nil {
		t.Fatal("expected write error for oversized frame")
	}
	// A forged oversized header must be rejected on read.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	var out Request
	if err := ReadFrame(&buf, &out); err == nil {
		t.Fatal("expected read error for oversized header")
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 2})
	buf.WriteString("{{")
	var out Request
	if err := ReadFrame(&buf, &out); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestNewInstanceServerValidation(t *testing.T) {
	m := models.MustByName("NCF")
	if _, err := NewInstanceServer("", m, 1); err == nil {
		t.Fatal("empty type must error")
	}
	if _, err := NewInstanceServer("p3.2xlarge", m, 1); err == nil {
		t.Fatal("unknown curve must error")
	}
	if _, err := NewInstanceServer(cloud.G4dnXlarge.Name, m, -1); err == nil {
		t.Fatal("negative scale must error")
	}
}

// startCluster boots instance servers for NCF (millisecond-scale real
// latencies) and returns their addresses plus a cleanup function.
func startCluster(t *testing.T, types []string, timeScale float64) []string {
	t.Helper()
	m := models.MustByName("NCF")
	addrs := make([]string, len(types))
	for i, tn := range types {
		s, err := NewInstanceServer(tn, m, timeScale)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		addrs[i] = s.Addr()
	}
	return addrs
}

func kairosPolicy(m models.Model, types []string) *core.Distributor {
	return core.NewDistributor(core.DistributorOptions{
		QoS:       m.QoS,
		BaseType:  cloud.G4dnXlarge.Name,
		Predictor: predictor.Warmed(m.Latency, types, []int{1, 500, 1000}),
	})
}

func TestEndToEndSingleQuery(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	types := []string{cloud.G4dnXlarge.Name}
	addrs := startCluster(t, types, 1)
	ctrl, err := NewController(m.Name, kairosPolicy(m, types), 1, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	res := ctrl.SubmitWait(m.Name, 100)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Instance != cloud.G4dnXlarge.Name {
		t.Fatalf("served by %s", res.Instance)
	}
	// True service is 1.35ms; end-to-end must be at least that and within
	// a loose multiple (scheduler + loopback overhead).
	want := m.Latency(types[0], 100)
	if res.LatencyMS < want || res.LatencyMS > want+50 {
		t.Fatalf("latency %.2fms, want >= %.2fms and < %.2fms", res.LatencyMS, want, want+50)
	}
}

func TestEndToEndHeterogeneousPlacement(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	types := []string{cloud.G4dnXlarge.Name, cloud.R5nLarge.Name}
	addrs := startCluster(t, types, 1)
	ctrl, err := NewController(m.Name, kairosPolicy(m, types), 1, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if got := ctrl.InstanceTypes(); len(got) != 2 {
		t.Fatalf("instance types = %v", got)
	}
	// A max-size query violates QoS on the idle CPU; it must be served by
	// the GPU even with both idle.
	res := ctrl.SubmitWait(m.Name, 1000)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Instance != cloud.G4dnXlarge.Name {
		t.Fatalf("max-size query served by %s, want the base GPU", res.Instance)
	}
	// A tiny query prefers the cheap CPU (weighted matching).
	res = ctrl.SubmitWait(m.Name, 10)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Instance != cloud.R5nLarge.Name {
		t.Fatalf("tiny query served by %s, want the CPU", res.Instance)
	}
}

func TestEndToEndConcurrentLoad(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	types := []string{cloud.G4dnXlarge.Name, cloud.R5nLarge.Name, cloud.R5nLarge.Name}
	// Dilate time 5x so OS timer granularity is small relative to NCF's
	// millisecond latencies.
	const scale = 5.0
	addrs := startCluster(t, types, scale)
	ctrl, err := NewController(m.Name, kairosPolicy(m, types), scale, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	// ~1 query per model-millisecond against ~1.5/ms of capacity.
	const n = 60
	var wg sync.WaitGroup
	results := make([]QueryResult, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			batch := 20 + (i%7)*25 // up to 170, feasible on every type
			results[i] = ctrl.SubmitWait(m.Name, batch)
		}(i)
		time.Sleep(scale * time.Millisecond)
	}
	wg.Wait()
	violations := 0
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d failed: %v", i, r.Err)
		}
		if r.LatencyMS > m.QoS {
			violations++
		}
	}
	// Moderate load on three instances: the vast majority must meet QoS.
	if violations > n/6 {
		t.Fatalf("%d/%d QoS violations under moderate load", violations, n)
	}
}

func TestControllerValidation(t *testing.T) {
	m := models.MustByName("NCF")
	if _, err := NewController(m.Name, nil, 1, m.Latency, []string{"x"}); err == nil {
		t.Fatal("nil policy must error")
	}
	pol := kairosPolicy(m, []string{cloud.G4dnXlarge.Name})
	if _, err := NewController(m.Name, pol, 1, m.Latency, nil); err == nil {
		t.Fatal("no addresses must error")
	}
	if _, err := NewController(m.Name, pol, 1, m.Latency, []string{"127.0.0.1:1"}); err == nil {
		t.Fatal("dial failure must error")
	}
}

func TestControllerCloseFailsOutstanding(t *testing.T) {
	t.Parallel()
	m := models.MustByName("RM2") // slow model: queries outlast the close
	types := []string{cloud.G4dnXlarge.Name}
	s, err := NewInstanceServer(types[0], m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctrl, err := NewController(m.Name, kairosPolicy(m, types), 1, m.Latency, []string{s.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate: several slow queries so some are still waiting.
	var chans []<-chan QueryResult
	for i := 0; i < 5; i++ {
		chans = append(chans, ctrl.Submit(m.Name, 1000))
	}
	time.Sleep(10 * time.Millisecond)
	ctrl.Close()
	failures := 0
	for _, ch := range chans {
		select {
		case r := <-ch:
			if r.Err != nil {
				failures++
			}
		case <-time.After(2 * time.Second):
			t.Fatal("query neither served nor failed after close")
		}
	}
	if failures == 0 {
		t.Fatal("expected at least one failed outstanding query")
	}
}

// capturePolicy records the QueryViews it is shown and assigns FCFS.
type capturePolicy struct {
	mu  sync.Mutex
	ids map[int]bool
}

func (p *capturePolicy) Name() string { return "capture" }

func (p *capturePolicy) Assign(_ float64, waiting []sim.QueryView, instances []sim.InstanceView) []sim.Assignment {
	p.mu.Lock()
	for _, q := range waiting {
		p.ids[q.ID] = true
	}
	p.mu.Unlock()
	var out []sim.Assignment
	used := map[int]bool{}
	for _, q := range waiting {
		for _, in := range instances {
			if in.Backlog() == 0 && !used[in.Index] {
				used[in.Index] = true
				out = append(out, sim.Assignment{Query: q.Index, Instance: in.Index})
				break
			}
		}
	}
	return out
}

// TestControllerExposesStableQueryIDs guards the contract partitioned
// policies rely on: every QueryView the controller hands a policy carries
// the query's distinct arrival ID (queries hash to partitions by ID).
func TestControllerExposesStableQueryIDs(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	types := []string{cloud.G4dnXlarge.Name}
	addrs := startCluster(t, types, 1)
	policy := &capturePolicy{ids: map[int]bool{}}
	ctrl, err := NewController(m.Name, policy, 1, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	const n = 4
	for i := 0; i < n; i++ {
		if res := ctrl.SubmitWait(m.Name, 10); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	policy.mu.Lock()
	defer policy.mu.Unlock()
	if len(policy.ids) != n {
		// A controller that leaves ID zero-valued collapses this to one
		// entry, which is how partitioned policies degenerate to partition 0.
		t.Fatalf("saw %d distinct query IDs over %d queries: %v", len(policy.ids), n, policy.ids)
	}
}

// startServer boots one NCF instance server and returns it plus its addr.
func startServer(t *testing.T, typeName string, timeScale float64) *InstanceServer {
	t.Helper()
	m := models.MustByName("NCF")
	s, err := NewInstanceServer(typeName, m, timeScale)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestControllerAddInstanceJoinsFleet(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	types := []string{cloud.G4dnXlarge.Name}
	addrs := startCluster(t, types, 1)
	ctrl, err := NewController(m.Name, kairosPolicy(m, []string{cloud.G4dnXlarge.Name, cloud.R5nLarge.Name}), 1, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	extra := startServer(t, cloud.R5nLarge.Name, 1)
	typeName, err := ctrl.AddInstance(extra.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if typeName != cloud.R5nLarge.Name {
		t.Fatalf("handshake announced %s", typeName)
	}
	if got := ctrl.InstanceTypes(); len(got) != 2 {
		t.Fatalf("fleet = %v after add", got)
	}
	// A tiny query prefers the cheap CPU (weighted matching) — the added
	// instance really serves.
	res := ctrl.SubmitWait(m.Name, 10)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Instance != cloud.R5nLarge.Name {
		t.Fatalf("tiny query served by %s, want the added CPU", res.Instance)
	}
	counts := ctrl.InstanceCounts()
	if counts[cloud.G4dnXlarge.Name] != 1 || counts[cloud.R5nLarge.Name] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestControllerRemoveInstanceDrains(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	// Two GPUs; dilate time so the backlog outlives the removal call.
	const scale = 20.0
	types := []string{cloud.G4dnXlarge.Name, cloud.G4dnXlarge.Name}
	addrs := startCluster(t, types, scale)
	ctrl, err := NewController(m.Name, kairosPolicy(m, types), scale, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	// Load both instances with slow queries, then remove one mid-flight.
	var chans []<-chan QueryResult
	for i := 0; i < 6; i++ {
		chans = append(chans, ctrl.Submit(m.Name, 1000))
	}
	time.Sleep(20 * time.Millisecond)
	removedAddr, err := ctrl.RemoveInstance(m.Name, cloud.G4dnXlarge.Name)
	if err != nil {
		t.Fatal(err)
	}
	if removedAddr != addrs[0] && removedAddr != addrs[1] {
		t.Fatalf("removed addr %s not in fleet %v", removedAddr, addrs)
	}
	if got := ctrl.InstanceTypes(); len(got) != 1 {
		t.Fatalf("fleet = %v after remove", got)
	}
	// Zero dropped queries: every submission completes without error.
	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.Err != nil {
				t.Fatalf("query %d dropped during drain: %v", i, r.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("query %d stuck after drain", i)
		}
	}
	// Removing the last instance of a type that is gone must error.
	if _, err := ctrl.RemoveInstance(m.Name, "nope"); err == nil {
		t.Fatal("removing an unknown type must error")
	}
}

func TestControllerStatsAndOnComplete(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	types := []string{cloud.G4dnXlarge.Name}
	addrs := startCluster(t, types, 1)
	ctrl, err := NewController(m.Name, kairosPolicy(m, types), 1, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	var mu sync.Mutex
	completions := 0
	batches := 0
	ctrl.SetOnComplete(func(model string, batch int, res QueryResult) {
		mu.Lock()
		defer mu.Unlock()
		completions++
		batches += batch
		if res.Batch != batch {
			t.Errorf("callback batch mismatch: %d vs %d", res.Batch, batch)
		}
	})
	const n = 5
	for i := 0; i < n; i++ {
		if res := ctrl.SubmitWait(m.Name, 100); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	mu.Lock()
	if completions != n || batches != n*100 {
		t.Fatalf("callback saw %d completions totalling %d", completions, batches)
	}
	mu.Unlock()

	s := ctrl.Stats()
	if s.Submitted != n || s.Completed != n || s.Failed != 0 || s.Waiting != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if len(s.Instances) != 1 {
		t.Fatalf("instance stats = %+v", s.Instances)
	}
	inst := s.Instances[0]
	if inst.TypeName != cloud.G4dnXlarge.Name || inst.Dispatched != n || inst.Completed != n || inst.Pending != 0 {
		t.Fatalf("instance stats = %+v", inst)
	}
	// Five completions of the 1.35ms batch-100 service: busy time is the
	// sum of ground-truth service times.
	want := float64(n) * m.Latency(cloud.G4dnXlarge.Name, 100)
	if inst.BusyMS < want*0.99 || inst.BusyMS > want*1.01 {
		t.Fatalf("busy %.3fms, want ~%.3fms", inst.BusyMS, want)
	}
	if inst.Addr == "" {
		t.Fatal("instance stats must carry the dialed address")
	}
}

// TestControllerEvictsDeadInstance: when an instance's connection dies
// outside Close, its in-flight queries must be requeued and redispatched
// to surviving capacity — an instance crash drops no admitted query — and
// the instance must leave the fleet so drains never wait on a ghost.
func TestControllerEvictsDeadInstance(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")

	// A fake instance: handshakes, swallows requests, never replies, and
	// drops its connection on demand.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	die := make(chan struct{})
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if err := WriteFrame(conn, Hello{TypeName: cloud.G4dnXlarge.Name, Model: m.Name}); err != nil {
			return
		}
		go func() {
			var req Request
			for ReadFrame(conn, &req) == nil {
			}
		}()
		<-die
		conn.Close()
	}()

	healthy := startServer(t, cloud.R5nLarge.Name, 1)
	types := []string{cloud.G4dnXlarge.Name, cloud.R5nLarge.Name}
	ctrl, err := NewController(m.Name, kairosPolicy(m, types), 1, m.Latency, []string{ln.Addr().String(), healthy.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	// Large queries route to the (fake) GPU and stick there unanswered.
	var chans []<-chan QueryResult
	for i := 0; i < 3; i++ {
		chans = append(chans, ctrl.Submit(m.Name, 1000))
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s := ctrl.Stats(); s.Instances[0].Pending > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(die) // the instance crashes mid-flight

	// Every stranded query must complete via the surviving CPU instance:
	// eviction requeues, the next round redispatches.
	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.Err != nil {
				t.Fatalf("query %d dropped by the crash: %v", i, r.Err)
			}
			if r.Instance != cloud.R5nLarge.Name {
				t.Fatalf("query %d served by %q, want the survivor %q", i, r.Instance, cloud.R5nLarge.Name)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("query %d hung after the instance died", i)
		}
	}
	deadline = time.Now().Add(5 * time.Second)
	for len(ctrl.InstanceTypes()) != 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := ctrl.InstanceTypes(); len(got) != 1 || got[0] != cloud.R5nLarge.Name {
		t.Fatalf("dead instance not evicted: fleet %v", got)
	}
	// The survivor still serves, and removing the dead type now errors
	// instead of draining a ghost.
	if res := ctrl.SubmitWait(m.Name, 100); res.Err != nil {
		t.Fatal(res.Err)
	}
	if _, err := ctrl.RemoveInstance(m.Name, cloud.G4dnXlarge.Name); err == nil {
		t.Fatal("removing the evicted type must error")
	}
}

func TestSubmitAfterCloseFailsFast(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	types := []string{cloud.G4dnXlarge.Name}
	addrs := startCluster(t, types, 1)
	ctrl, err := NewController(m.Name, kairosPolicy(m, types), 1, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Close()
	select {
	case res := <-ctrl.Submit(m.Name, 10):
		if res.Err == nil {
			t.Fatal("submit after close must fail")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("submit after close hung")
	}
}

// TestControllerRejectsWrongModelBanner: an instance announcing a model
// the controller does not serve must be rejected at dial time, both in the
// constructor and in AddInstance — never silently accepted into a fleet
// that would route another model's queries to it.
func TestControllerRejectsWrongModelBanner(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	wrong := models.MustByName("RM2")
	s, err := NewInstanceServer(cloud.G4dnXlarge.Name, wrong, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := NewController(m.Name, kairosPolicy(m, []string{cloud.G4dnXlarge.Name}), 1, m.Latency, []string{s.Addr()}); err == nil {
		t.Fatal("constructor must reject a wrong-model banner")
	} else if !strings.Contains(err.Error(), wrong.Name) || !strings.Contains(err.Error(), m.Name) {
		t.Fatalf("rejection must name both models: %v", err)
	}

	addrs := startCluster(t, []string{cloud.G4dnXlarge.Name}, 1)
	ctrl, err := NewController(m.Name, kairosPolicy(m, []string{cloud.G4dnXlarge.Name}), 1, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if _, err := ctrl.AddInstance(s.Addr()); err == nil {
		t.Fatal("AddInstance must reject a wrong-model banner")
	}
	if got := len(ctrl.InstanceTypes()); got != 1 {
		t.Fatalf("rejected instance leaked into the fleet: %d instances", got)
	}
}

// TestInstanceServerRejectsWrongModelRequest: the wire-level guard — a
// request tagged with another model's name gets an error reply, not a
// silently-served query.
func TestInstanceServerRejectsWrongModelRequest(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	s, err := NewInstanceServer(cloud.G4dnXlarge.Name, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello Hello
	if err := ReadFrame(conn, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Model != m.Name {
		t.Fatalf("banner announces %q", hello.Model)
	}
	if err := WriteFrame(conn, Request{ID: 1, Model: "RM2", Batch: 10}); err != nil {
		t.Fatal(err)
	}
	var reply Reply
	if err := ReadFrame(conn, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Err == "" || !strings.Contains(reply.Err, m.Name) {
		t.Fatalf("wrong-model request must error, got %+v", reply)
	}
	// A correctly-tagged request still serves.
	if err := WriteFrame(conn, Request{ID: 2, Model: m.Name, Batch: 10}); err != nil {
		t.Fatal(err)
	}
	var ok Reply
	if err := ReadFrame(conn, &ok); err != nil {
		t.Fatal(err)
	}
	if ok.Err != "" || ok.ServiceMS <= 0 {
		t.Fatalf("tagged request failed: %+v", ok)
	}
}

// startModelServer boots one instance server for an explicit model.
func startModelServer(t *testing.T, m models.Model, typeName string, timeScale float64) *InstanceServer {
	t.Helper()
	s, err := NewInstanceServer(typeName, m, timeScale)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestMultiModelRouting: two models share one controller; each query lands
// only on its own model's instances, stats are tagged per model, and a
// submission for an unknown model fails fast.
func TestMultiModelRouting(t *testing.T) {
	t.Parallel()
	ncf := models.MustByName("NCF")
	wnd := models.MustByName("MT-WND")
	sN := startModelServer(t, ncf, cloud.R5nLarge.Name, 1)
	sW := startModelServer(t, wnd, cloud.G4dnXlarge.Name, 1)
	groups := map[string]GroupSpec{
		ncf.Name: {Policy: kairosPolicy(ncf, []string{cloud.R5nLarge.Name}), Predict: ncf.Latency},
		wnd.Name: {Policy: kairosPolicy(wnd, []string{cloud.G4dnXlarge.Name}), Predict: wnd.Latency},
	}
	ctrl, err := NewMultiController(groups, 1, []string{sN.Addr(), sW.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if got := ctrl.Models(); len(got) != 2 || got[0] != wnd.Name || got[1] != ncf.Name {
		t.Fatalf("models = %v", got)
	}

	const n = 4
	for i := 0; i < n; i++ {
		if res := ctrl.SubmitWait(ncf.Name, 50); res.Err != nil {
			t.Fatal(res.Err)
		} else if res.Instance != cloud.R5nLarge.Name || res.Model != ncf.Name {
			t.Fatalf("NCF query served by %s as %s", res.Instance, res.Model)
		}
		if res := ctrl.SubmitWait(wnd.Name, 50); res.Err != nil {
			t.Fatal(res.Err)
		} else if res.Instance != cloud.G4dnXlarge.Name || res.Model != wnd.Name {
			t.Fatalf("MT-WND query served by %s as %s", res.Instance, res.Model)
		}
	}

	st := ctrl.Stats()
	if st.Submitted != 2*n || st.Completed != 2*n || st.Failed != 0 {
		t.Fatalf("aggregate stats = %+v", st)
	}
	for _, name := range []string{ncf.Name, wnd.Name} {
		ms, ok := st.Models[name]
		if !ok || ms.Submitted != n || ms.Completed != n || len(ms.Instances) != 1 {
			t.Fatalf("model %s stats = %+v", name, ms)
		}
		if ms.Instances[0].Model != name || ms.Instances[0].Completed != n {
			t.Fatalf("model %s instance stats = %+v", name, ms.Instances[0])
		}
	}
	if got := ctrl.ModelInstanceCounts(ncf.Name); got[cloud.R5nLarge.Name] != 1 || len(got) != 1 {
		t.Fatalf("NCF counts = %v", got)
	}

	select {
	case res := <-ctrl.Submit("no-such-model", 10):
		if res.Err == nil {
			t.Fatal("unknown model must fail")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("unknown-model submit hung")
	}
	// Removing a type under the wrong model errors instead of draining
	// another model's instance.
	if _, err := ctrl.RemoveInstance(ncf.Name, cloud.G4dnXlarge.Name); err == nil {
		t.Fatal("cross-model removal must error")
	}
}

// TestControllerConcurrentReconfiguration races Submit, Stats,
// AddInstance, and RemoveInstance against live traffic under -race: the
// accounting must stay consistent and no query may be dropped while the
// fleet churns.
func TestControllerConcurrentReconfiguration(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	types := []string{cloud.G4dnXlarge.Name, cloud.R5nLarge.Name}
	addrs := startCluster(t, types, 1)
	ctrl, err := NewController(m.Name, kairosPolicy(m, types), 1, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	const (
		submitters = 4
		perWorker  = 30
	)
	var wg sync.WaitGroup
	errc := make(chan error, submitters*perWorker+4)

	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if res := ctrl.SubmitWait(m.Name, 10+(w*perWorker+i)%150); res.Err != nil {
					errc <- res.Err
					return
				}
			}
		}(w)
	}
	// Churn: repeatedly add an r5n and drain one back out while serving.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			extra := startModelServer(t, m, cloud.R5nLarge.Name, 1)
			if _, err := ctrl.AddInstance(extra.Addr()); err != nil {
				errc <- err
				return
			}
			if _, err := ctrl.RemoveInstance(m.Name, cloud.R5nLarge.Name); err != nil {
				errc <- err
				return
			}
		}
	}()
	// Observer: stats and counts must never tear while the fleet churns.
	stop := make(chan struct{})
	observerDone := make(chan struct{})
	go func() {
		defer close(observerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := ctrl.Stats()
			if st.Completed+st.Failed > st.Submitted {
				errc <- fmt.Errorf("stats tear: %+v", st)
				return
			}
			ctrl.InstanceCounts()
			ctrl.ModelInstanceCounts(m.Name)
			ctrl.InstanceTypes()
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case err := <-errc:
		close(stop)
		t.Fatal(err)
	case <-done:
	}
	close(stop)
	<-observerDone

	st := ctrl.Stats()
	if st.Failed != 0 {
		t.Fatalf("%d queries dropped during concurrent reconfiguration", st.Failed)
	}
	if st.Submitted != submitters*perWorker || st.Completed != st.Submitted {
		t.Fatalf("accounting drifted: %+v", st)
	}
}

// TestSubmitToEmptyGroupFailsFast: a model whose group has no serving
// capacity (starved by the fleet planner, or its last instance drained)
// must fail submissions immediately — and orphaned waiting queries must
// fail when the last instance leaves — instead of hanging forever.
func TestSubmitToEmptyGroupFailsFast(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	// An FCFS-to-idle policy: dispatches at most one query per instance,
	// so a backlog parks in the central queue.
	policy := &capturePolicy{ids: map[int]bool{}}
	// Slow everything down so the backlog outlives the removal.
	const scale = 20.0
	addrs := startCluster(t, []string{cloud.G4dnXlarge.Name}, scale)
	ctrl, err := NewController(m.Name, policy, scale, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	// One query in flight, two parked in the central queue.
	chans := []<-chan QueryResult{
		ctrl.Submit(m.Name, 1000),
		ctrl.Submit(m.Name, 1000),
		ctrl.Submit(m.Name, 1000),
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := ctrl.Stats(); st.Instances[0].Pending > 0 && st.Waiting > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Removing the only instance drains the in-flight query and fails the
	// parked ones — nothing hangs.
	if _, err := ctrl.RemoveInstance(m.Name, cloud.G4dnXlarge.Name); err != nil {
		t.Fatal(err)
	}
	completed, failed := 0, 0
	for i, ch := range chans {
		select {
		case res := <-ch:
			if res.Err != nil {
				if !strings.Contains(res.Err.Error(), "no serving capacity") {
					t.Fatalf("query %d failed with %v", i, res.Err)
				}
				failed++
			} else {
				completed++
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("query %d hung after the last instance left", i)
		}
	}
	if completed != 1 || failed != 2 {
		t.Fatalf("drain completed %d and failed %d, want 1 and 2", completed, failed)
	}

	// New submissions to the empty group fail fast.
	select {
	case res := <-ctrl.Submit(m.Name, 10):
		if res.Err == nil || !strings.Contains(res.Err.Error(), "no serving capacity") {
			t.Fatalf("empty-group submit returned %v", res.Err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("empty-group submit hung")
	}
	// Capacity restores service.
	extra := startModelServer(t, m, cloud.R5nLarge.Name, scale)
	if _, err := ctrl.AddInstance(extra.Addr()); err != nil {
		t.Fatal(err)
	}
	if res := ctrl.SubmitWait(m.Name, 10); res.Err != nil {
		t.Fatal(res.Err)
	}
}
