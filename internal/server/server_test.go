package server

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"kairos/internal/cloud"
	"kairos/internal/core"
	"kairos/internal/models"
	"kairos/internal/predictor"
	"kairos/internal/sim"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Request{ID: 42, Batch: 777}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	big := struct {
		Payload string `json:"payload"`
	}{Payload: strings.Repeat("x", MaxFrame+1)}
	if err := WriteFrame(&buf, big); err == nil {
		t.Fatal("expected write error for oversized frame")
	}
	// A forged oversized header must be rejected on read.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	var out Request
	if err := ReadFrame(&buf, &out); err == nil {
		t.Fatal("expected read error for oversized header")
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 2})
	buf.WriteString("{{")
	var out Request
	if err := ReadFrame(&buf, &out); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestNewInstanceServerValidation(t *testing.T) {
	m := models.MustByName("NCF")
	if _, err := NewInstanceServer("", m, 1); err == nil {
		t.Fatal("empty type must error")
	}
	if _, err := NewInstanceServer("p3.2xlarge", m, 1); err == nil {
		t.Fatal("unknown curve must error")
	}
	if _, err := NewInstanceServer(cloud.G4dnXlarge.Name, m, -1); err == nil {
		t.Fatal("negative scale must error")
	}
}

// startCluster boots instance servers for NCF (millisecond-scale real
// latencies) and returns their addresses plus a cleanup function.
func startCluster(t *testing.T, types []string, timeScale float64) []string {
	t.Helper()
	m := models.MustByName("NCF")
	addrs := make([]string, len(types))
	for i, tn := range types {
		s, err := NewInstanceServer(tn, m, timeScale)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		addrs[i] = s.Addr()
	}
	return addrs
}

func kairosPolicy(m models.Model, types []string) *core.Distributor {
	return core.NewDistributor(core.DistributorOptions{
		QoS:       m.QoS,
		BaseType:  cloud.G4dnXlarge.Name,
		Predictor: predictor.Warmed(m.Latency, types, []int{1, 500, 1000}),
	})
}

func TestEndToEndSingleQuery(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	types := []string{cloud.G4dnXlarge.Name}
	addrs := startCluster(t, types, 1)
	ctrl, err := NewController(kairosPolicy(m, types), 1, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	res := ctrl.SubmitWait(100)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Instance != cloud.G4dnXlarge.Name {
		t.Fatalf("served by %s", res.Instance)
	}
	// True service is 1.35ms; end-to-end must be at least that and within
	// a loose multiple (scheduler + loopback overhead).
	want := m.Latency(types[0], 100)
	if res.LatencyMS < want || res.LatencyMS > want+50 {
		t.Fatalf("latency %.2fms, want >= %.2fms and < %.2fms", res.LatencyMS, want, want+50)
	}
}

func TestEndToEndHeterogeneousPlacement(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	types := []string{cloud.G4dnXlarge.Name, cloud.R5nLarge.Name}
	addrs := startCluster(t, types, 1)
	ctrl, err := NewController(kairosPolicy(m, types), 1, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if got := ctrl.InstanceTypes(); len(got) != 2 {
		t.Fatalf("instance types = %v", got)
	}
	// A max-size query violates QoS on the idle CPU; it must be served by
	// the GPU even with both idle.
	res := ctrl.SubmitWait(1000)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Instance != cloud.G4dnXlarge.Name {
		t.Fatalf("max-size query served by %s, want the base GPU", res.Instance)
	}
	// A tiny query prefers the cheap CPU (weighted matching).
	res = ctrl.SubmitWait(10)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Instance != cloud.R5nLarge.Name {
		t.Fatalf("tiny query served by %s, want the CPU", res.Instance)
	}
}

func TestEndToEndConcurrentLoad(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	types := []string{cloud.G4dnXlarge.Name, cloud.R5nLarge.Name, cloud.R5nLarge.Name}
	// Dilate time 5x so OS timer granularity is small relative to NCF's
	// millisecond latencies.
	const scale = 5.0
	addrs := startCluster(t, types, scale)
	ctrl, err := NewController(kairosPolicy(m, types), scale, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	// ~1 query per model-millisecond against ~1.5/ms of capacity.
	const n = 60
	var wg sync.WaitGroup
	results := make([]QueryResult, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			batch := 20 + (i%7)*25 // up to 170, feasible on every type
			results[i] = ctrl.SubmitWait(batch)
		}(i)
		time.Sleep(scale * time.Millisecond)
	}
	wg.Wait()
	violations := 0
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d failed: %v", i, r.Err)
		}
		if r.LatencyMS > m.QoS {
			violations++
		}
	}
	// Moderate load on three instances: the vast majority must meet QoS.
	if violations > n/6 {
		t.Fatalf("%d/%d QoS violations under moderate load", violations, n)
	}
}

func TestControllerValidation(t *testing.T) {
	m := models.MustByName("NCF")
	if _, err := NewController(nil, 1, m.Latency, []string{"x"}); err == nil {
		t.Fatal("nil policy must error")
	}
	pol := kairosPolicy(m, []string{cloud.G4dnXlarge.Name})
	if _, err := NewController(pol, 1, m.Latency, nil); err == nil {
		t.Fatal("no addresses must error")
	}
	if _, err := NewController(pol, 1, m.Latency, []string{"127.0.0.1:1"}); err == nil {
		t.Fatal("dial failure must error")
	}
}

func TestControllerCloseFailsOutstanding(t *testing.T) {
	t.Parallel()
	m := models.MustByName("RM2") // slow model: queries outlast the close
	types := []string{cloud.G4dnXlarge.Name}
	s, err := NewInstanceServer(types[0], m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctrl, err := NewController(kairosPolicy(m, types), 1, m.Latency, []string{s.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate: several slow queries so some are still waiting.
	var chans []<-chan QueryResult
	for i := 0; i < 5; i++ {
		chans = append(chans, ctrl.Submit(1000))
	}
	time.Sleep(10 * time.Millisecond)
	ctrl.Close()
	failures := 0
	for _, ch := range chans {
		select {
		case r := <-ch:
			if r.Err != nil {
				failures++
			}
		case <-time.After(2 * time.Second):
			t.Fatal("query neither served nor failed after close")
		}
	}
	if failures == 0 {
		t.Fatal("expected at least one failed outstanding query")
	}
}

// capturePolicy records the QueryViews it is shown and assigns FCFS.
type capturePolicy struct {
	mu  sync.Mutex
	ids map[int]bool
}

func (p *capturePolicy) Name() string { return "capture" }

func (p *capturePolicy) Assign(_ float64, waiting []sim.QueryView, instances []sim.InstanceView) []sim.Assignment {
	p.mu.Lock()
	for _, q := range waiting {
		p.ids[q.ID] = true
	}
	p.mu.Unlock()
	var out []sim.Assignment
	used := map[int]bool{}
	for _, q := range waiting {
		for _, in := range instances {
			if in.Backlog() == 0 && !used[in.Index] {
				used[in.Index] = true
				out = append(out, sim.Assignment{Query: q.Index, Instance: in.Index})
				break
			}
		}
	}
	return out
}

// TestControllerExposesStableQueryIDs guards the contract partitioned
// policies rely on: every QueryView the controller hands a policy carries
// the query's distinct arrival ID (queries hash to partitions by ID).
func TestControllerExposesStableQueryIDs(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	types := []string{cloud.G4dnXlarge.Name}
	addrs := startCluster(t, types, 1)
	policy := &capturePolicy{ids: map[int]bool{}}
	ctrl, err := NewController(policy, 1, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	const n = 4
	for i := 0; i < n; i++ {
		if res := ctrl.SubmitWait(10); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	policy.mu.Lock()
	defer policy.mu.Unlock()
	if len(policy.ids) != n {
		// A controller that leaves ID zero-valued collapses this to one
		// entry, which is how partitioned policies degenerate to partition 0.
		t.Fatalf("saw %d distinct query IDs over %d queries: %v", len(policy.ids), n, policy.ids)
	}
}
