package server

import (
	"net"
	"sync"
	"time"
)

// ConnTracker is the shared drain machinery for serving-side listeners
// (the instance server and the ingress front-end): it tracks live
// connections so a graceful shutdown can pop their blocked readers with
// expired read deadlines — fully-received buffered frames keep being
// served because bufio satisfies those reads without touching the socket
// — and force-close whatever remains once a drain deadline passes. The
// subtle ordering (a connection registered after the sweep must start
// with an expired deadline, or it would sleep through the drain) lives
// here once.
type ConnTracker struct {
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	draining bool
}

// Track registers a live connection and returns its untrack func. If the
// drain sweep already ran, the connection starts with an expired read
// deadline so it serves only what is already buffered.
func (t *ConnTracker) Track(conn net.Conn) (untrack func()) {
	t.mu.Lock()
	if t.conns == nil {
		t.conns = make(map[net.Conn]struct{})
	}
	t.conns[conn] = struct{}{}
	draining := t.draining
	t.mu.Unlock()
	if draining {
		conn.SetReadDeadline(time.Now())
	}
	return func() {
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}
}

// SweepReadDeadlines marks the tracker draining and expires every live
// connection's read deadline.
func (t *ConnTracker) SweepReadDeadlines() {
	t.mu.Lock()
	t.draining = true
	conns := make([]net.Conn, 0, len(t.conns))
	for conn := range t.conns {
		conns = append(conns, conn)
	}
	t.mu.Unlock()
	now := time.Now()
	for _, conn := range conns {
		conn.SetReadDeadline(now)
	}
}

// CloseAll force-closes every still-tracked connection — the drain
// backstop.
func (t *ConnTracker) CloseAll() {
	t.mu.Lock()
	conns := make([]net.Conn, 0, len(t.conns))
	for conn := range t.conns {
		conns = append(conns, conn)
	}
	t.mu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
}
