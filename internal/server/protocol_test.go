package server

import (
	"math"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"kairos/internal/cloud"
	"kairos/internal/models"
)

// TestBinaryRequestRoundTrip is a property test over the binary request
// codec: random IDs (full int64 range), batches (full int32 range), and
// model names up to the wire limit must survive encode → decode exactly.
func TestBinaryRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var buf []byte
	for i := 0; i < 2000; i++ {
		in := Request{
			ID:    rng.Int63() - rng.Int63(),
			Batch: int(int32(rng.Uint32())),
			Model: strings.Repeat("m", rng.Intn(256)),
			Trace: rng.Intn(2) == 1,
		}
		var err error
		buf, err = AppendRequestFrame(buf[:0], in)
		if err != nil {
			t.Fatalf("encode %+v: %v", in, err)
		}
		id, batch, model, traced, err := DecodeRequestFrame(buf[4:])
		if err != nil {
			t.Fatalf("decode %+v: %v", in, err)
		}
		if id != in.ID || batch != in.Batch || string(model) != in.Model || traced != in.Trace {
			t.Fatalf("round trip: got (%d,%d,%q,%v), want (%d,%d,%q,%v)", id, batch, model, traced, in.ID, in.Batch, in.Model, in.Trace)
		}
	}
}

// TestBinaryReplyRoundTrip is the reply-side property test, covering
// special floats and error strings up to the frame limit.
func TestBinaryReplyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var buf []byte
	for i := 0; i < 2000; i++ {
		in := Reply{
			ID:        rng.Int63() - rng.Int63(),
			ServiceMS: math.Float64frombits(rng.Uint64()),
			Err:       strings.Repeat("e", rng.Intn(512)),
		}
		if rng.Intn(2) == 1 {
			in.Traced = true
			in.WaitNS = rng.Int63() - rng.Int63()
		}
		if math.IsNaN(in.ServiceMS) {
			in.ServiceMS = 0 // NaN != NaN breaks the equality check below
		}
		var err error
		buf, err = AppendReplyFrame(buf[:0], in)
		if err != nil {
			t.Fatalf("encode %+v: %v", in, err)
		}
		out, err := DecodeReplyFrame(buf[4:])
		if err != nil {
			t.Fatalf("decode %+v: %v", in, err)
		}
		if out != in {
			t.Fatalf("round trip: %+v != %+v", out, in)
		}
	}
}

// TestBinaryCodecRejectsMalformed: wrong kind bytes, truncations, length
// mismatches, and over-limit fields must all error instead of misparsing.
func TestBinaryCodecRejectsMalformed(t *testing.T) {
	if _, err := AppendRequestFrame(nil, Request{Model: strings.Repeat("x", 256)}); err == nil {
		t.Fatal("oversized model must fail to encode")
	}
	if _, err := AppendRequestFrame(nil, Request{Batch: math.MaxInt32 + 1}); err == nil {
		t.Fatal("batch outside int32 must fail to encode")
	}
	if _, err := AppendReplyFrame(nil, Reply{Err: strings.Repeat("x", math.MaxUint16+1)}); err == nil {
		t.Fatal("oversized error must fail to encode")
	}
	req, err := AppendRequestFrame(nil, Request{ID: 1, Model: "NCF", Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AppendReplyFrame(nil, Reply{ID: 1, ServiceMS: 3, Err: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := DecodeRequestFrame(rep[4:]); err == nil {
		t.Fatal("request decoder must reject a reply frame")
	}
	if _, err := DecodeReplyFrame(req[4:]); err == nil {
		t.Fatal("reply decoder must reject a request frame")
	}
	for _, p := range [][]byte{nil, {frameRequest}, req[4 : len(req)-1], append(append([]byte{}, req[4:]...), 0)} {
		if _, _, _, _, err := DecodeRequestFrame(p); err == nil {
			t.Fatalf("truncated/padded request %v must fail", p)
		}
	}
	for _, p := range [][]byte{nil, {frameReply}, rep[4 : len(rep)-1], append(append([]byte{}, rep[4:]...), 0)} {
		if _, err := DecodeReplyFrame(p); err == nil {
			t.Fatalf("truncated/padded reply %v must fail", p)
		}
	}
	// A traced reply that is too short for its WaitNS field must not
	// misparse as a plain reply.
	trep, err := AppendReplyFrame(nil, Reply{ID: 9, ServiceMS: 1, Traced: true, WaitNS: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][]byte{trep[4:23], trep[4 : len(trep)-1], append(append([]byte{}, trep[4:]...), 0)} {
		if _, err := DecodeReplyFrame(p); err == nil {
			t.Fatalf("truncated/padded traced reply %v must fail", p)
		}
	}
}

// legacyJSONInstance emulates a pre-binary instance server: its Hello
// carries no proto field and it speaks length-prefixed JSON only.
func legacyJSONInstance(t *testing.T, typeName string, m models.Model) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		type legacyHello struct {
			TypeName string `json:"type_name"`
			Model    string `json:"model"`
		}
		if err := WriteFrame(conn, legacyHello{TypeName: typeName, Model: m.Name}); err != nil {
			return
		}
		for {
			var req Request
			if err := ReadFrame(conn, &req); err != nil {
				return
			}
			if err := WriteFrame(conn, Reply{ID: req.ID, ServiceMS: m.Latency(typeName, req.Batch)}); err != nil {
				return
			}
		}
	}()
	return ln.Addr().String()
}

// TestMixedVersionBinaryControllerJSONInstance: a controller that prefers
// the binary protocol must fall back to JSON for a legacy instance whose
// banner announces no version — and serve through it correctly.
func TestMixedVersionBinaryControllerJSONInstance(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	legacyAddr := legacyJSONInstance(t, cloud.G4dnXlarge.Name, m)
	modern := startServer(t, cloud.R5nLarge.Name, 1)
	types := []string{cloud.G4dnXlarge.Name, cloud.R5nLarge.Name}
	ctrl, err := NewController(m.Name, kairosPolicy(m, types), 1, m.Latency, []string{legacyAddr, modern.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	// A max-size query must land on the (legacy, JSON) GPU; a tiny one on
	// the (modern, binary) CPU — both protocols serving side by side.
	res := ctrl.SubmitWait(m.Name, 1000)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Instance != cloud.G4dnXlarge.Name {
		t.Fatalf("big query served by %s, want the legacy GPU", res.Instance)
	}
	res = ctrl.SubmitWait(m.Name, 10)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Instance != cloud.R5nLarge.Name {
		t.Fatalf("tiny query served by %s, want the modern CPU", res.Instance)
	}
	st := ctrl.Stats()
	if st.Completed != 2 || st.Failed != 0 {
		t.Fatalf("mixed-version stats = %+v", st)
	}
}

// TestMixedVersionJSONControllerBinaryInstance: a legacy controller that
// never sends a HelloAck must still be served by a modern instance — the
// instance's first-frame probe has to treat the JSON request as traffic,
// not as a failed negotiation.
func TestMixedVersionJSONControllerBinaryInstance(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	s := startServer(t, cloud.G4dnXlarge.Name, 1)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello Hello
	if err := ReadFrame(conn, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Proto < ProtoBinary {
		t.Fatalf("modern instance announced proto %d", hello.Proto)
	}
	// Speak legacy JSON: requests straight away, no ack.
	for i := int64(1); i <= 3; i++ {
		if err := WriteFrame(conn, Request{ID: i, Model: m.Name, Batch: 100}); err != nil {
			t.Fatal(err)
		}
		var rep Reply
		if err := ReadFrame(conn, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.ID != i || rep.Err != "" || rep.ServiceMS <= 0 {
			t.Fatalf("legacy round %d: %+v", i, rep)
		}
	}
}

// TestNegotiatedBinaryHandshake pins the wire negotiation: a modern
// controller and instance agree on ProtoBinary and the first dispatched
// query round-trips through the binary codec (observable as a correct
// reply with a sub-frame latency budget — and via the raw ack below).
func TestNegotiatedBinaryHandshake(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	s := startServer(t, cloud.G4dnXlarge.Name, 1)
	// Raw dial: confirm the instance announces binary support and accepts
	// an explicit ack followed by a binary request.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello Hello
	if err := ReadFrame(conn, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Proto < ProtoBinary {
		t.Fatalf("instance announced proto %d, want >= %d", hello.Proto, ProtoBinary)
	}
	if err := WriteFrame(conn, HelloAck{Proto: ProtoBinary}); err != nil {
		t.Fatal(err)
	}
	frame, err := AppendRequestFrame(nil, Request{ID: 99, Model: m.Name, Batch: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := readRawFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := DecodeReplyFrame(payload)
	if err != nil {
		t.Fatalf("reply not binary after ack: %v", err)
	}
	if rep.ID != 99 || rep.Err != "" || rep.ServiceMS <= 0 {
		t.Fatalf("binary reply = %+v", rep)
	}
}
