// Package server is the network serving path of the reproduction: the
// paper's central controller sends optimized inference requests to
// individual instance servers over gRPC (Sec. 6); here the transport is a
// length-prefixed JSON protocol over TCP built only on the standard
// library. It exists so the system runs end to end as real processes — the
// throughput experiments use the deterministic simulator instead.
package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// MaxFrame bounds a protocol frame; requests and replies are tiny, so
// anything larger indicates a corrupted stream.
const MaxFrame = 1 << 16

// Request asks an instance server to serve one batched query.
type Request struct {
	// ID correlates the reply.
	ID int64 `json:"id"`
	// Model names the model the query targets; servers reject requests for
	// a model they do not host. Empty skips the check (legacy controllers).
	Model string `json:"model,omitempty"`
	// Batch is the query batch size.
	Batch int `json:"batch"`
}

// Reply reports a served query.
type Reply struct {
	// ID echoes the request.
	ID int64 `json:"id"`
	// ServiceMS is the server-side service time in milliseconds.
	ServiceMS float64 `json:"service_ms"`
	// Err carries a server-side failure, empty on success.
	Err string `json:"err,omitempty"`
}

// Hello is the banner an instance server sends on connect, announcing what
// it is.
type Hello struct {
	// TypeName is the cloud instance type, e.g. "g4dn.xlarge".
	TypeName string `json:"type_name"`
	// Model is the served model name.
	Model string `json:"model"`
}

// WriteFrame writes one length-prefixed JSON message.
func WriteFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("server: encoding frame: %w", err)
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed JSON message into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("server: decoding frame: %w", err)
	}
	return nil
}
