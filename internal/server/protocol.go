// Package server is the network serving path of the reproduction: the
// paper's central controller sends optimized inference requests to
// individual instance servers over gRPC (Sec. 6); here the transport is a
// length-prefixed protocol over TCP built only on the standard library.
// The handshake banner is JSON; the per-query Request/Reply frames use a
// compact fixed-width binary encoding negotiated at connect time, with
// JSON retained as the fallback for legacy peers. It exists so the system
// runs end to end as real processes — the throughput experiments use the
// deterministic simulator instead.
package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// MaxFrame bounds a protocol frame; requests and replies are tiny, so
// anything larger indicates a corrupted stream.
const MaxFrame = 1 << 16

// Wire protocol versions. The instance server announces the highest
// version it speaks in its Hello banner; the controller picks the highest
// version both sides support and confirms it with a HelloAck. A banner
// without a version (a legacy instance) and an absent ack (a legacy
// controller) both select ProtoJSON, so mixed-version fleets keep working.
const (
	// ProtoJSON is the original length-prefixed JSON protocol.
	ProtoJSON = 0
	// ProtoBinary is the fixed-width binary Request/Reply encoding.
	ProtoBinary = 1
	// ProtoTraced extends ProtoBinary with the flight-recorder frame
	// kinds: a traced request (the kind byte is the trace flag) and a
	// traced reply carrying the instance-side wait time. Peers that
	// negotiated ProtoBinary never see the new kinds.
	ProtoTraced = 2
	// ProtoSession extends ProtoTraced with the session request kind: a
	// request carrying an optional session-affinity key and per-request
	// deadline. Only the ingress front door speaks it; controller →
	// instance traffic never uses the new kind.
	ProtoSession = 3
)

// Request asks an instance server to serve one batched query.
type Request struct {
	// ID correlates the reply.
	ID int64 `json:"id"`
	// Model names the model the query targets; servers reject requests for
	// a model they do not host. Empty skips the check (legacy controllers).
	Model string `json:"model,omitempty"`
	// Batch is the query batch size.
	Batch int `json:"batch"`
	// Trace marks a sampled query: the instance measures its serve-slot
	// wait and echoes a traced reply. On the wire it is the frame kind
	// (binary) or this field (JSON fallback); legacy peers ignore it.
	Trace bool `json:"trace,omitempty"`
	// Session is an optional client session key for affinity routing:
	// queries with the same key prefer the same instance. Only the
	// ingress front door interprets it (ProtoSession); legacy peers
	// ignore the field.
	Session string `json:"session,omitempty"`
	// DeadlineMS bounds how long the query may wait for dispatch,
	// relative to its arrival at the front door. 0 means no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Reply reports a served query.
type Reply struct {
	// ID echoes the request.
	ID int64 `json:"id"`
	// ServiceMS is the server-side service time in milliseconds.
	ServiceMS float64 `json:"service_ms"`
	// Err carries a server-side failure, empty on success.
	Err string `json:"err,omitempty"`
	// Traced echoes Request.Trace; only traced replies carry WaitNS.
	Traced bool `json:"traced,omitempty"`
	// WaitNS is the wall time the request waited for the instance's
	// serve slot (receive → service start), measured instance-side.
	WaitNS int64 `json:"wait_ns,omitempty"`
}

// Hello is the banner an instance server sends on connect, announcing what
// it is and the highest protocol version it speaks.
type Hello struct {
	// TypeName is the cloud instance type, e.g. "g4dn.xlarge".
	TypeName string `json:"type_name"`
	// Model is the served model name.
	Model string `json:"model"`
	// Proto is the highest wire version the instance supports. Legacy
	// instances omit it (zero = ProtoJSON).
	Proto int `json:"proto,omitempty"`
}

// HelloAck is the controller's negotiation reply: the wire version every
// following Request/Reply frame on the connection uses. Legacy controllers
// never send it and instances fall back to ProtoJSON (the ack is
// distinguishable from a JSON Request by its "proto" key).
type HelloAck struct {
	Proto int `json:"proto"`
	// Token authenticates the client to a front door configured with a
	// static token list; peers that enforce no auth ignore it.
	Token string `json:"token,omitempty"`
}

// HandshakeProbe decodes the first post-banner frame of a serving-side
// connection: a HelloAck from a version-aware peer carries "proto"; a
// legacy JSON peer sends a Request straight away. Both the instance
// server and the ingress front-end perform this negotiation, so the
// probe shape lives here once.
type HandshakeProbe struct {
	Proto *int   `json:"proto"`
	Token string `json:"token"`
	ID    int64  `json:"id"`
	Model string `json:"model"`
	Batch int    `json:"batch"`
	// Session and DeadlineMS mirror the Request fields so a legacy JSON
	// peer whose first frame is a query keeps its affinity key and
	// deadline through the probe.
	Session    string `json:"session"`
	DeadlineMS int64  `json:"deadline_ms"`
}

// WriteFrame writes one length-prefixed JSON message.
func WriteFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("server: encoding frame: %w", err)
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed JSON message into v.
func ReadFrame(r io.Reader, v any) error {
	payload, err := readRawFrame(r, nil)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("server: decoding frame: %w", err)
	}
	return nil
}

// ReadRawFrame reads one length-prefixed payload without decoding it,
// reusing buf when it is large enough. The returned slice is only valid
// until the next call with the same buffer. Front-ends that speak the
// binary codec (internal/ingress) pair it with DecodeRequestFrame /
// DecodeReplyFrame.
func ReadRawFrame(r io.Reader, buf []byte) ([]byte, error) {
	return readRawFrame(r, buf)
}

// readRawFrame reads one length-prefixed payload, reusing buf when it is
// large enough. The returned slice is only valid until the next call with
// the same buffer.
func readRawFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds limit", n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Binary (ProtoBinary) payloads: a kind byte followed by fixed-width
// fields, with the two variable strings length-prefixed. ProtoTraced
// adds two kinds: a traced request shares the request layout (the kind
// byte carries the flag), and a traced reply inserts the instance-side
// wait before the error string.
//
//	Request:        kind(1) id(8) batch(4) modelLen(1) model
//	Reply:          kind(1) id(8) serviceMS(8) errLen(2) err
//	RequestTraced:  kind(1) id(8) batch(4) modelLen(1) model
//	ReplyTraced:    kind(1) id(8) serviceMS(8) waitNS(8) errLen(2) err
//	RequestSession: kind(1) id(8) batch(4) deadlineMS(4) flags(1) modelLen(1) model sessLen(1) sess
//
// The session request (ProtoSession) folds the trace flag into a flags
// byte instead of minting yet another kind, and bounds the deadline at
// ~49 days (uint32 milliseconds) — deadlines are per-request, not epochs.
const (
	frameRequest        = 0x01
	frameReply          = 0x02
	frameRequestTraced  = 0x03
	frameReplyTraced    = 0x04
	frameRequestSession = 0x05

	sessionFlagTraced = 0x01
)

// AppendRequestFrame appends the length-prefixed binary encoding of req.
// A request carrying a session key or deadline encodes as the session
// kind, which only ProtoSession peers decode; the caller gates on the
// negotiated version.
func AppendRequestFrame(buf []byte, req Request) ([]byte, error) {
	if len(req.Model) > math.MaxUint8 {
		return buf, fmt.Errorf("server: model name of %d bytes exceeds limit", len(req.Model))
	}
	if req.Batch < math.MinInt32 || req.Batch > math.MaxInt32 {
		return buf, fmt.Errorf("server: batch %d outside the wire range", req.Batch)
	}
	if req.Session != "" || req.DeadlineMS != 0 {
		if len(req.Session) > math.MaxUint8 {
			return buf, fmt.Errorf("server: session key of %d bytes exceeds limit", len(req.Session))
		}
		if req.DeadlineMS < 0 || req.DeadlineMS > math.MaxUint32 {
			return buf, fmt.Errorf("server: deadline %dms outside the wire range", req.DeadlineMS)
		}
		n := 1 + 8 + 4 + 4 + 1 + 1 + len(req.Model) + 1 + len(req.Session)
		buf = binary.BigEndian.AppendUint32(buf, uint32(n))
		buf = append(buf, frameRequestSession)
		buf = binary.BigEndian.AppendUint64(buf, uint64(req.ID))
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(req.Batch)))
		buf = binary.BigEndian.AppendUint32(buf, uint32(req.DeadlineMS))
		var flags byte
		if req.Trace {
			flags |= sessionFlagTraced
		}
		buf = append(buf, flags)
		buf = append(buf, byte(len(req.Model)))
		buf = append(buf, req.Model...)
		buf = append(buf, byte(len(req.Session)))
		buf = append(buf, req.Session...)
		return buf, nil
	}
	n := 1 + 8 + 4 + 1 + len(req.Model)
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	kind := byte(frameRequest)
	if req.Trace {
		kind = frameRequestTraced
	}
	buf = append(buf, kind)
	buf = binary.BigEndian.AppendUint64(buf, uint64(req.ID))
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(req.Batch)))
	buf = append(buf, byte(len(req.Model)))
	buf = append(buf, req.Model...)
	return buf, nil
}

// RequestView is a zero-copy decoded binary request: Model and Session
// alias the frame buffer and are only valid until it is reused.
type RequestView struct {
	ID         int64
	Batch      int
	Model      []byte
	Session    []byte
	DeadlineMS int64
	Traced     bool
}

// DecodeRequestView parses any binary request kind without copying.
func DecodeRequestView(p []byte) (RequestView, error) {
	var rv RequestView
	if len(p) >= 1 && p[0] == frameRequestSession {
		if len(p) < 20 {
			return rv, fmt.Errorf("server: malformed session request frame (%d bytes)", len(p))
		}
		rv.ID = int64(binary.BigEndian.Uint64(p[1:9]))
		rv.Batch = int(int32(binary.BigEndian.Uint32(p[9:13])))
		rv.DeadlineMS = int64(binary.BigEndian.Uint32(p[13:17]))
		rv.Traced = p[17]&sessionFlagTraced != 0
		mlen := int(p[18])
		if len(p) < 19+mlen+1 {
			return rv, fmt.Errorf("server: malformed session request frame (%d bytes)", len(p))
		}
		rv.Model = p[19 : 19+mlen]
		slen := int(p[19+mlen])
		if len(p) != 20+mlen+slen {
			return rv, fmt.Errorf("server: session request frame length %d, want %d", len(p), 20+mlen+slen)
		}
		rv.Session = p[20+mlen:]
		return rv, nil
	}
	id, batch, model, traced, err := DecodeRequestFrame(p)
	if err != nil {
		return rv, err
	}
	return RequestView{ID: id, Batch: batch, Model: model, Traced: traced}, nil
}

// DecodeRequestFrame parses a binary request payload without copying: the
// returned model bytes alias p and are only valid until p is reused.
// Both request kinds decode here; traced reports which one arrived.
// Session requests need DecodeRequestView.
func DecodeRequestFrame(p []byte) (id int64, batch int, model []byte, traced bool, err error) {
	if len(p) < 14 || (p[0] != frameRequest && p[0] != frameRequestTraced) {
		return 0, 0, nil, false, fmt.Errorf("server: malformed binary request frame (%d bytes)", len(p))
	}
	id = int64(binary.BigEndian.Uint64(p[1:9]))
	batch = int(int32(binary.BigEndian.Uint32(p[9:13])))
	mlen := int(p[13])
	if len(p) != 14+mlen {
		return 0, 0, nil, false, fmt.Errorf("server: binary request frame length %d, want %d", len(p), 14+mlen)
	}
	return id, batch, p[14:], p[0] == frameRequestTraced, nil
}

// AppendReplyFrame appends the length-prefixed binary encoding of rep.
// A traced reply uses the extended layout carrying WaitNS.
func AppendReplyFrame(buf []byte, rep Reply) ([]byte, error) {
	if len(rep.Err) > math.MaxUint16 {
		return buf, fmt.Errorf("server: reply error of %d bytes exceeds limit", len(rep.Err))
	}
	extra := 0
	if rep.Traced {
		extra = 8
	}
	n := 1 + 8 + 8 + extra + 2 + len(rep.Err)
	if n > MaxFrame {
		return buf, fmt.Errorf("server: frame of %d bytes exceeds limit", n)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	if rep.Traced {
		buf = append(buf, frameReplyTraced)
	} else {
		buf = append(buf, frameReply)
	}
	buf = binary.BigEndian.AppendUint64(buf, uint64(rep.ID))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(rep.ServiceMS))
	if rep.Traced {
		buf = binary.BigEndian.AppendUint64(buf, uint64(rep.WaitNS))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(rep.Err)))
	buf = append(buf, rep.Err...)
	return buf, nil
}

// DecodeReplyFrame parses a binary reply payload (either kind). The
// error string is copied (replies carry one only on failure), so the
// result outlives p.
func DecodeReplyFrame(p []byte) (Reply, error) {
	if len(p) < 19 || (p[0] != frameReply && p[0] != frameReplyTraced) {
		return Reply{}, fmt.Errorf("server: malformed binary reply frame (%d bytes)", len(p))
	}
	rep := Reply{
		ID:        int64(binary.BigEndian.Uint64(p[1:9])),
		ServiceMS: math.Float64frombits(binary.BigEndian.Uint64(p[9:17])),
	}
	off := 17
	if p[0] == frameReplyTraced {
		if len(p) < 27 {
			return Reply{}, fmt.Errorf("server: malformed traced reply frame (%d bytes)", len(p))
		}
		rep.Traced = true
		rep.WaitNS = int64(binary.BigEndian.Uint64(p[17:25]))
		off = 25
	}
	elen := int(binary.BigEndian.Uint16(p[off : off+2]))
	if len(p) != off+2+elen {
		return Reply{}, fmt.Errorf("server: binary reply frame length %d, want %d", len(p), off+2+elen)
	}
	if elen > 0 {
		rep.Err = string(p[off+2:])
	}
	return rep, nil
}
