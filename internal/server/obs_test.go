package server

import (
	"sync"
	"testing"
	"time"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/obs"
)

// TestFlightRecorderEndToEnd serves real queries with sampling forced to
// 1 and checks every observability surface: per-stage histograms, the
// per-instance-type serve histogram, and the trace ring — including the
// instance-side wait stage that only traced wire frames carry.
func TestFlightRecorderEndToEnd(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	types := []string{cloud.G4dnXlarge.Name}
	addrs := startCluster(t, types, 0.05)
	ctrl, err := NewController(m.Name, kairosPolicy(m, types), 0.05, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.SetTraceSampling(1, 0) // trace everything

	const n = 20
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if res := ctrl.SubmitWait(m.Name, 10+i); res.Err != nil {
				t.Errorf("query %d: %v", i, res.Err)
			}
		}(i)
	}
	wg.Wait()

	mo := ctrl.Obs().Model(m.Name)
	if mo == nil {
		t.Fatal("registry has no shard for the served model")
	}
	for _, st := range []obs.Stage{obs.StageQueue, obs.StageFlight, obs.StageServe, obs.StageE2E, obs.StageWait} {
		snap := mo.StageSnapshot(st)
		if snap.Count != n {
			t.Fatalf("stage %s recorded %d samples, want %d", st, snap.Count, n)
		}
		if st != obs.StageQueue && snap.SumNS <= 0 {
			t.Fatalf("stage %s has non-positive total %d", st, snap.SumNS)
		}
	}
	serve := mo.ServeByType()
	if len(serve) != 1 || serve[0].Type != cloud.G4dnXlarge.Name || serve[0].Snap.Count != n {
		t.Fatalf("serve-by-type = %+v, want %d samples on %s", serve, n, cloud.G4dnXlarge.Name)
	}
	traces := mo.Traces(2 * n)
	if len(traces) != n {
		t.Fatalf("ring holds %d traces, want %d", len(traces), n)
	}
	for _, tr := range traces {
		if tr.Err {
			t.Fatalf("trace %d flagged as error", tr.ID)
		}
		if tr.Instance != cloud.G4dnXlarge.Name {
			t.Fatalf("trace %d served by %q", tr.ID, tr.Instance)
		}
		if tr.ServeNS <= 0 || tr.E2ENS < tr.ServeNS || tr.QueueNS < 0 || tr.WaitNS < 0 {
			t.Fatalf("trace %d has inconsistent stages: %+v", tr.ID, tr)
		}
	}
}

// TestTraceSamplingZeroStillAggregates: sampling 0 disables per-query
// traces entirely, but the always-on stage histograms keep counting —
// the aggregate layer never depends on the sampler.
func TestTraceSamplingZeroStillAggregates(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	types := []string{cloud.G4dnXlarge.Name}
	addrs := startCluster(t, types, 0.05)
	ctrl, err := NewController(m.Name, kairosPolicy(m, types), 0.05, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.SetTraceSampling(0, 0)

	const n = 8
	for i := 0; i < n; i++ {
		if res := ctrl.SubmitWait(m.Name, 50); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	mo := ctrl.Obs().Model(m.Name)
	if got := mo.StageSnapshot(obs.StageE2E).Count; got != n {
		t.Fatalf("e2e histogram counted %d, want %d", got, n)
	}
	if got := mo.StageSnapshot(obs.StageWait).Count; got != 0 {
		t.Fatalf("wait stage counted %d with sampling off, want 0", got)
	}
	if traces := mo.Traces(16); len(traces) != 0 {
		t.Fatalf("ring holds %d traces with sampling off", len(traces))
	}
}

// TestOutstandingQueriesNamesStuckWork submits against a deliberately
// slow instance and checks that the in-flight snapshot names each
// undelivered query with its last stage, then empties once served.
func TestOutstandingQueriesNamesStuckWork(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	types := []string{cloud.G4dnXlarge.Name}
	// Dilate time hard so queries stay in flight long enough to observe.
	const scale = 20.0
	addrs := startCluster(t, types, scale)
	ctrl, err := NewController(m.Name, kairosPolicy(m, types), scale, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.SetTraceSampling(1, 0)

	const n = 3
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctrl.SubmitWait(m.Name, 1000) // ~13ms true latency → ~260ms dilated
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	seen := 0
	for time.Now().Before(deadline) {
		out := ctrl.OutstandingQueries()
		seen = len(out)
		for _, q := range out {
			if q.Model != m.Name {
				t.Fatalf("outstanding query names model %q", q.Model)
			}
			if q.Stage != "queued" && q.Stage != "dispatched" {
				t.Fatalf("outstanding query in unknown stage %q", q.Stage)
			}
			if q.Stage == "dispatched" && q.Instance != cloud.G4dnXlarge.Name {
				t.Fatalf("dispatched query on %q", q.Instance)
			}
			if !q.Traced {
				t.Fatalf("query %d not traced despite sampling 1", q.ID)
			}
			if q.AgeMS < 0 {
				t.Fatalf("query %d has negative age %f", q.ID, q.AgeMS)
			}
		}
		if seen == n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if seen != n {
		t.Fatalf("never observed all %d queries outstanding (last saw %d)", n, seen)
	}
	wg.Wait()
	if out := ctrl.OutstandingQueries(); len(out) != 0 {
		t.Fatalf("drained controller still reports %d outstanding: %+v", len(out), out)
	}
}
