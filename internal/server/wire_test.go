package server

import (
	"net"
	"testing"
)

// TestConnWriterStickyError: a mid-round auto-flush failure drops frames
// that were queued earlier in the round, so the error must stick — the
// round's final flush has to keep reporting it, otherwise groupRound
// would never undo the dropped dispatches.
func TestConnWriterStickyError(t *testing.T) {
	t.Parallel()
	c1, c2 := net.Pipe()
	c2.Close() // every write on c1 now fails
	defer c1.Close()
	cw := &connWriter{conn: c1, buf: make([]byte, 32)}
	frame := make([]byte, 24)
	if err := cw.queue(frame); err != nil {
		t.Fatalf("buffered queue must not touch the socket: %v", err)
	}
	// The second frame does not fit: the auto-flush hits the dead socket.
	if err := cw.queue(frame); err == nil {
		t.Fatal("auto-flush on a dead connection must error")
	}
	if err := cw.flush(); err == nil {
		t.Fatal("flush after a failed auto-flush must keep reporting the error: the first frame was dropped")
	}
	if err := cw.queue(frame); err == nil {
		t.Fatal("queue after a write failure must keep reporting the error")
	}
}
