package server

import (
	"testing"
	"time"

	"kairos/internal/cloud"
	"kairos/internal/models"
)

// TestRemoveInstanceAddrDrains: the drain-ahead-of-death path — removing
// a preemption-noticed instance by address blocks until its dispatched
// backlog is delivered, reports the instance's identity for the replan,
// and drops nothing.
func TestRemoveInstanceAddrDrains(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	typeName := cloud.G4dnXlarge.Name
	const batch = 100
	// ~30ms per query: the drain provably overlaps live service.
	scale := 30 / m.Latency(typeName, batch)
	doomed := startServer(t, typeName, scale)
	ctrl, err := NewController(m.Name, kairosPolicy(m, []string{typeName}), 1, m.Latency, []string{doomed.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	// Backlog on the doomed instance, then survivor capacity to take over.
	var results []<-chan QueryResult
	for i := 0; i < 3; i++ {
		results = append(results, ctrl.Submit(m.Name, batch))
	}
	waitPending(t, ctrl)
	survivor := startServer(t, typeName, 1e-6)
	if _, err := ctrl.AddInstance(survivor.Addr()); err != nil {
		t.Fatal(err)
	}

	model, gotType, died, err := ctrl.RemoveInstanceAddr(doomed.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if died {
		t.Fatal("an orderly drain must not report a mid-drain death")
	}
	if model != m.Name || gotType != typeName {
		t.Fatalf("drained instance reported as %s/%s", model, gotType)
	}
	for i, ch := range results {
		select {
		case res := <-ch:
			if res.Err != nil {
				t.Fatalf("query %d dropped across the drain: %v", i, res.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("query %d never delivered", i)
		}
	}
	// The drained instance is gone; the survivor serves on.
	if got := ctrl.ModelInstanceCounts(m.Name)[typeName]; got != 1 {
		t.Fatalf("fleet holds %d %s instances after the drain, want 1", got, typeName)
	}
	if res := ctrl.SubmitWait(m.Name, batch); res.Err != nil {
		t.Fatalf("post-drain query failed: %v", res.Err)
	}
	// A second removal of the same address must refuse: nothing is there.
	if _, _, _, err := ctrl.RemoveInstanceAddr(doomed.Addr()); err == nil {
		t.Fatal("removing an already-removed address must error")
	}
}

// TestRemoveInstanceAddrDiedMidDrain: the race the preemption deadline
// forces — the noticed instance crashes while its drain is still waiting
// on a wedged backlog. The eviction path must win cleanly: the backlog is
// redispatched to surviving capacity with zero drops, and
// RemoveInstanceAddr reports died=true so the caller falls back to fault
// healing instead of an orderly stop.
func TestRemoveInstanceAddrDiedMidDrain(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	typeName := cloud.G4dnXlarge.Name
	fakeAddr, die := fakeInstance(t, typeName, m.Name)
	ctrl, err := NewController(m.Name, kairosPolicy(m, []string{typeName}), 1, m.Latency, []string{fakeAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	// Queries dispatch to the doomed instance and wedge there.
	var results []<-chan QueryResult
	for i := 0; i < 3; i++ {
		results = append(results, ctrl.Submit(m.Name, 100))
	}
	waitPending(t, ctrl)
	survivor := startServer(t, typeName, 1e-6)
	if _, err := ctrl.AddInstance(survivor.Addr()); err != nil {
		t.Fatal(err)
	}

	// The drain blocks on the wedged backlog; the deadline kill lands
	// mid-drain.
	type removal struct {
		died bool
		err  error
	}
	done := make(chan removal, 1)
	go func() {
		_, _, died, err := ctrl.RemoveInstanceAddr(fakeAddr)
		done <- removal{died, err}
	}()
	time.Sleep(20 * time.Millisecond) // the drain loop is now polling
	close(die)                        // revocation deadline: the instance dies mid-drain

	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("mid-drain death must not error the removal: %v", r.err)
		}
		if !r.died {
			t.Fatal("a mid-drain death must be reported so the caller falls back to healing")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RemoveInstanceAddr hung on an instance that died mid-drain")
	}
	// Zero drops: eviction redispatched the wedged backlog to the survivor.
	for i, ch := range results {
		select {
		case res := <-ch:
			if res.Err != nil {
				t.Fatalf("query %d dropped in the drain/death race: %v", i, res.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("query %d never redispatched after the mid-drain death", i)
		}
	}
	if st := ctrl.Stats(); st.Failed != 0 {
		t.Fatalf("%d queries failed across the drain/death race", st.Failed)
	}
}
