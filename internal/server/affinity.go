package server

import "sort"

// Session-affine routing: the front door tags queries with a session
// hash, and the controller's dispatch loop tries to land every query of
// a session on the same instance via consistent hashing with bounded
// load (the KubeAI modelresolver shape). Affinity is a hint, never a
// correctness constraint: when the preferred instance is over the load
// bound — or gone — the query falls through to the model's distribution
// policy like any other.
const (
	// affinityVNodes is the number of ring points per instance; more
	// points smooth the key split when instances come and go.
	affinityVNodes = 64
	// affinityLoadFactor bounds how far past its fair share of the
	// backlog a preferred instance may be loaded before affinity yields:
	// bound = ceil(factor × (backlog+1) / instances), the classic c of
	// consistent hashing with bounded load (factor 1.25 ⇒ ≤25% skew).
	affinityLoadFactorNum = 5
	affinityLoadFactorDen = 4
)

// ringEntry is one virtual node: an instance at a hash point.
type ringEntry struct {
	hash uint64
	ri   *remoteInstance
}

// affinityRing is a model group's consistent-hash ring over its
// non-draining instances. It is rebuilt (not incrementally edited) on
// every membership or draining change — fleets are tens of instances,
// so a rebuild is a few microseconds and far easier to keep correct
// across evictions, preemptions, and replans.
type affinityRing struct {
	entries []ringEntry
}

// rebuild re-derives the ring from the group's live instances. The
// caller holds the group's mu.
func (r *affinityRing) rebuild(instances []*remoteInstance) {
	r.entries = r.entries[:0]
	for _, ri := range instances {
		if ri.draining {
			continue
		}
		h := fnv64(ri.addr)
		for v := uint64(0); v < affinityVNodes; v++ {
			r.entries = append(r.entries, ringEntry{splitmix64(h + v), ri})
		}
	}
	sort.Slice(r.entries, func(i, j int) bool { return r.entries[i].hash < r.entries[j].hash })
}

// pick walks the ring clockwise from the session's hash point and
// returns the first instance whose backlog is under bound; nil when the
// ring is empty or everything is saturated. The caller holds the
// group's mu.
func (r *affinityRing) pick(session uint64, bound int) *remoteInstance {
	n := len(r.entries)
	if n == 0 {
		return nil
	}
	i := sort.Search(n, func(i int) bool { return r.entries[i].hash >= session })
	for k := 0; k < n; k++ {
		ri := r.entries[(i+k)%n].ri
		if !ri.draining && len(ri.pending) < bound {
			return ri
		}
	}
	return nil
}

// affinityBound computes the bounded-load cap for one dispatch: how many
// pending queries the preferred instance may already hold and still take
// this one. backlog is the group's total in-flight count before this
// dispatch.
func affinityBound(backlog, instances int) int {
	if instances <= 0 {
		return 0
	}
	num := affinityLoadFactorNum * (backlog + 1)
	den := affinityLoadFactorDen * instances
	return (num + den - 1) / den
}

// SessionHash maps a client session key to the ring's key space: FNV-1a
// finished with a splitmix64 avalanche so nearby keys spread across the
// ring. The zero hash is reserved for "no session", so real keys map to
// 1 instead.
func SessionHash(key []byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	h = splitmix64(h)
	if h == 0 {
		h = 1
	}
	return h
}

func fnv64(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// high-quality avalanche over 64 bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
