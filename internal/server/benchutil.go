package server

import (
	"bytes"
	"fmt"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/sim"
)

// This file is the shared support for the serving-path benchmarks: the
// in-package go-test benchmarks and cmd/kairos-microbench (which writes
// the BENCH_micro.json trajectory CI tracks) must measure the same
// workload, so the policy, the cluster bootstrap, and the codec exercise
// loops live here once instead of drifting apart as two copies.

// LeastBacklog is a zero-allocation least-backlog dispatcher: it assigns
// each waiting query to the assignable instance with the shallowest
// backlog. The serving-path benchmarks use it to isolate the controller
// and wire machinery from the matching policy's own Assign cost (tracked
// separately by the core microbenchmarks).
type LeastBacklog struct {
	// MaxPending caps an instance's backlog (in flight + queued) before it
	// stops receiving work; 0 means 16.
	MaxPending int

	out  []sim.Assignment
	load []int
}

// Name implements sim.Distributor.
func (p *LeastBacklog) Name() string { return "least-backlog" }

// Assign implements sim.Distributor.
func (p *LeastBacklog) Assign(_ float64, waiting []sim.QueryView, instances []sim.InstanceView) []sim.Assignment {
	maxPending := p.MaxPending
	if maxPending <= 0 {
		maxPending = 16
	}
	p.out = p.out[:0]
	p.load = p.load[:0]
	for _, in := range instances {
		p.load = append(p.load, in.Backlog())
	}
	for _, q := range waiting {
		best := -1
		for i := range instances {
			if p.load[i] >= maxPending {
				continue
			}
			if best < 0 || p.load[i] < p.load[best] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		p.load[best]++
		p.out = append(p.out, sim.Assignment{Query: q.Index, Instance: instances[best].Index})
	}
	return p.out
}

// BenchCluster is the canonical serving-path benchmark fixture: two
// models (NCF and MT-WND), two loopback instance servers each (one GPU,
// one CPU type), and a connected controller.
type BenchCluster struct {
	Ctrl *Controller
	// ModelNames are the two served models, for alternating submitters.
	ModelNames []string
	servers    []*InstanceServer
}

// StartBenchCluster boots the fixture. scale compresses emulated service
// time (1e-6 makes the wire + scheduler path the measured cost, not the
// sleep). mkPolicy builds each model's dispatch policy; nil uses
// LeastBacklog.
func StartBenchCluster(scale float64, mkPolicy func(m models.Model, types []string) sim.Distributor) (*BenchCluster, error) {
	if mkPolicy == nil {
		mkPolicy = func(models.Model, []string) sim.Distributor { return &LeastBacklog{} }
	}
	ncf := models.MustByName("NCF")
	wnd := models.MustByName("MT-WND")
	specs := []struct {
		m  models.Model
		tn string
	}{
		{ncf, cloud.G4dnXlarge.Name},
		{ncf, cloud.R5nLarge.Name},
		{wnd, cloud.G4dnXlarge.Name},
		{wnd, cloud.R5nLarge.Name},
	}
	c := &BenchCluster{ModelNames: []string{ncf.Name, wnd.Name}}
	addrs := make([]string, len(specs))
	for i, sp := range specs {
		s, err := NewInstanceServer(sp.tn, sp.m, scale)
		if err != nil {
			c.Close()
			return nil, err
		}
		if err := s.Start("127.0.0.1:0"); err != nil {
			c.Close()
			return nil, err
		}
		c.servers = append(c.servers, s)
		addrs[i] = s.Addr()
	}
	types := []string{cloud.G4dnXlarge.Name, cloud.R5nLarge.Name}
	groups := map[string]GroupSpec{
		ncf.Name: {Policy: mkPolicy(ncf, types), Predict: ncf.Latency},
		wnd.Name: {Policy: mkPolicy(wnd, types), Predict: wnd.Latency},
	}
	ctrl, err := NewMultiController(groups, scale, addrs)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.Ctrl = ctrl
	return c, nil
}

// Close tears the controller and servers down.
func (c *BenchCluster) Close() {
	if c.Ctrl != nil {
		c.Ctrl.Close()
	}
	for _, s := range c.servers {
		s.Close()
	}
}

// Worker is one closed-loop submitter: it alternates models by worker
// index and calls SubmitWait while next() keeps it running (testing.PB's
// Next, typically). The first error stops the loop.
func (c *BenchCluster) Worker(w int64, next func() bool) error {
	model := c.ModelNames[w%2]
	batch := 1 + int(w%8)*20
	for next() {
		if res := c.Ctrl.SubmitWait(model, batch); res.Err != nil {
			return res.Err
		}
	}
	return nil
}

// FrameBenchCase is one wire-codec exercise loop shared between the
// go-test benchmarks and kairos-microbench.
type FrameBenchCase struct {
	Name string
	// Loop runs n iterations of the case.
	Loop func(n int) error
}

// FrameBenchCases covers both codecs in both hot directions: request
// encode (the controller's per-dispatch cost) and reply decode (its
// per-completion cost).
func FrameBenchCases() []FrameBenchCase {
	req := Request{ID: 123456789, Model: "NCF", Batch: 750}
	rep := Reply{ID: 123456789, ServiceMS: 1.348}
	return []FrameBenchCase{
		{"FrameEncodeRequestJSON", func(n int) error {
			var buf bytes.Buffer
			for i := 0; i < n; i++ {
				buf.Reset()
				if err := WriteFrame(&buf, req); err != nil {
					return err
				}
			}
			return nil
		}},
		{"FrameDecodeReplyJSON", func(n int) error {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, rep); err != nil {
				return err
			}
			frame := buf.Bytes()
			for i := 0; i < n; i++ {
				var out Reply
				if err := ReadFrame(bytes.NewReader(frame), &out); err != nil {
					return err
				}
			}
			return nil
		}},
		{"FrameEncodeRequestBinary", func(n int) error {
			var buf []byte
			for i := 0; i < n; i++ {
				var err error
				buf, err = AppendRequestFrame(buf[:0], req)
				if err != nil {
					return err
				}
			}
			return nil
		}},
		{"FrameDecodeReplyBinary", func(n int) error {
			frame, err := AppendReplyFrame(nil, rep)
			if err != nil {
				return err
			}
			payload := frame[4:]
			for i := 0; i < n; i++ {
				out, err := DecodeReplyFrame(payload)
				if err != nil {
					return err
				}
				if out.ID != rep.ID {
					return fmt.Errorf("decode mismatch: %+v", out)
				}
			}
			return nil
		}},
	}
}
