package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"kairos/internal/models"
)

// InstanceServer emulates one cloud instance hosting a model copy: it
// accepts a controller connection and serves one query at a time (the
// paper's no-contention serving rule, Sec. 6), sleeping the model's
// calibrated latency scaled by TimeScale.
type InstanceServer struct {
	// TypeName is the instance type this server emulates.
	TypeName string
	// Model is the served model.
	Model models.Model
	// TimeScale compresses real time: service sleeps TimeScale * latency.
	// 1.0 is real time; tests use small fractions. Zero defaults to 1.
	TimeScale float64

	mu sync.Mutex // serializes service: one query at a time

	listener net.Listener
	wg       sync.WaitGroup
	closed   chan struct{}
}

// NewInstanceServer validates the fields and prepares a server.
func NewInstanceServer(typeName string, model models.Model, timeScale float64) (*InstanceServer, error) {
	if typeName == "" {
		return nil, errors.New("server: empty instance type")
	}
	if _, ok := model.Curves[typeName]; !ok {
		return nil, fmt.Errorf("server: model %s has no curve for %s", model.Name, typeName)
	}
	if timeScale < 0 {
		return nil, errors.New("server: negative time scale")
	}
	if timeScale == 0 {
		timeScale = 1
	}
	return &InstanceServer{TypeName: typeName, Model: model, TimeScale: timeScale, closed: make(chan struct{})}, nil
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral test port) and
// serves connections until Close.
func (s *InstanceServer) Start(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.listener = l
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound address; only valid after Start.
func (s *InstanceServer) Addr() string { return s.listener.Addr().String() }

// Close stops the listener and waits for in-flight connections.
func (s *InstanceServer) Close() error {
	close(s.closed)
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

func (s *InstanceServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				return
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles one controller connection: banner, then a request
// loop. Service is serialized across every connection so the instance
// truly serves one query at a time.
func (s *InstanceServer) serveConn(conn net.Conn) {
	defer conn.Close()
	if err := WriteFrame(conn, Hello{TypeName: s.TypeName, Model: s.Model.Name}); err != nil {
		return
	}
	for {
		var req Request
		if err := ReadFrame(conn, &req); err != nil {
			return
		}
		reply := s.serve(req)
		if err := WriteFrame(conn, reply); err != nil {
			return
		}
	}
}

// serve performs the (emulated) inference.
func (s *InstanceServer) serve(req Request) Reply {
	if req.Model != "" && req.Model != s.Model.Name {
		return Reply{ID: req.ID, Err: fmt.Sprintf("instance serves model %s, not %s", s.Model.Name, req.Model)}
	}
	if req.Batch < 1 || req.Batch > models.MaxBatch {
		return Reply{ID: req.ID, Err: fmt.Sprintf("batch %d outside [1,%d]", req.Batch, models.MaxBatch)}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	serviceMS := s.Model.Latency(s.TypeName, req.Batch)
	time.Sleep(time.Duration(serviceMS * s.TimeScale * float64(time.Millisecond)))
	return Reply{ID: req.ID, ServiceMS: serviceMS}
}
