package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"kairos/internal/cloud"
	"kairos/internal/models"
)

// InstanceServer emulates one cloud instance hosting a model copy: it
// accepts a controller connection and serves one query at a time (the
// paper's no-contention serving rule, Sec. 6), sleeping the model's
// calibrated latency scaled by TimeScale.
type InstanceServer struct {
	// TypeName is the instance type this server emulates.
	TypeName string
	// Model is the served model.
	Model models.Model
	// TimeScale compresses real time: service sleeps TimeScale * latency.
	// 1.0 is real time; tests use small fractions. Zero defaults to 1.
	TimeScale float64

	mu sync.Mutex // serializes service: one query at a time

	listener net.Listener
	wg       sync.WaitGroup
	closed   chan struct{}

	// draining is closed by Shutdown; active connections finish serving
	// their fully-received requests and then go away.
	draining  chan struct{}
	drainOnce sync.Once
	closeOnce sync.Once
	closeErr  error

	tracker ConnTracker
}

// NewInstanceServer validates the fields and prepares a server.
func NewInstanceServer(typeName string, model models.Model, timeScale float64) (*InstanceServer, error) {
	if typeName == "" {
		return nil, errors.New("server: empty instance type")
	}
	if _, ok := model.Curves[typeName]; !ok {
		// Spot variants serve on the same hardware as their on-demand base
		// type, so they share its calibrated curve.
		if _, ok := model.Curves[cloud.OnDemandName(typeName)]; !ok {
			return nil, fmt.Errorf("server: model %s has no curve for %s", model.Name, typeName)
		}
	}
	if timeScale < 0 {
		return nil, errors.New("server: negative time scale")
	}
	if timeScale == 0 {
		timeScale = 1
	}
	return &InstanceServer{
		TypeName:  typeName,
		Model:     model,
		TimeScale: timeScale,
		closed:    make(chan struct{}),
		draining:  make(chan struct{}),
	}, nil
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral test port) and
// serves connections until Close.
func (s *InstanceServer) Start(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.listener = l
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound address; only valid after Start.
func (s *InstanceServer) Addr() string { return s.listener.Addr().String() }

// Close stops the listener and waits for in-flight connections. It does
// not force active connections shut; peers (the controller) close them.
// Idempotent, and safe after Shutdown.
func (s *InstanceServer) Close() error {
	s.closeOnce.Do(func() {
		close(s.closed)
		err := s.listener.Close()
		if err != nil && errors.Is(err, net.ErrClosed) {
			err = nil // Shutdown already closed it
		}
		s.closeErr = err
		s.wg.Wait()
	})
	return s.closeErr
}

// Kill abruptly terminates the server: the listener and every active
// connection close immediately, dropping whatever was in flight — the
// in-process analogue of SIGKILLing a kairosd. Fault-injection harnesses
// use it to exercise the controller's eviction and redispatch path; an
// orderly teardown wants Close or Shutdown instead.
func (s *InstanceServer) Kill() error {
	s.closeOnce.Do(func() {
		close(s.closed)
		err := s.listener.Close()
		if err != nil && errors.Is(err, net.ErrClosed) {
			err = nil
		}
		s.tracker.CloseAll()
		s.closeErr = err
		s.wg.Wait()
	})
	return s.closeErr
}

// Shutdown gracefully drains the server: the listener closes so nothing
// new connects, every fully-received request is served and its reply
// flushed, and only then do the connections go away — so a SIGTERM'd
// kairosd (see the exec actuation provider) never drops a query it has
// accepted. Requests still in flight on the network when the drain
// starts are not waited for; the controller sees the close and fails
// them like any lost instance. Shutdown waits up to timeout for the
// drain before force-closing lingering connections.
func (s *InstanceServer) Shutdown(timeout time.Duration) error {
	s.drainOnce.Do(func() { close(s.draining) })
	err := s.listener.Close()
	if err != nil && errors.Is(err, net.ErrClosed) {
		err = nil
	}
	// Expired read deadlines pop blocked readers out of their syscalls;
	// buffered (fully-received) requests keep being served because the
	// bufio window satisfies those reads without touching the socket.
	s.tracker.SweepReadDeadlines()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		s.tracker.CloseAll()
		<-done
		if err == nil {
			err = fmt.Errorf("server: drain exceeded %v; connections force-closed", timeout)
		}
	}
	return err
}

// drainExit reports whether a read error is the drain deadline firing
// (an orderly exit with everything buffered already served) rather than
// a real connection failure.
func (s *InstanceServer) drainExit(err error) bool {
	select {
	case <-s.draining:
	default:
		return false
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (s *InstanceServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				return
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles one controller connection: banner, version
// negotiation, then a request loop. Service is serialized across every
// connection so the instance truly serves one query at a time.
func (s *InstanceServer) serveConn(conn net.Conn) {
	defer conn.Close()
	defer s.tracker.Track(conn)()
	wc := newWireConn(conn)
	if err := wc.writeJSON(Hello{TypeName: s.TypeName, Model: s.Model.Name, Proto: ProtoTraced}); err != nil {
		return
	}
	// The first frame is always JSON: either the controller's HelloAck
	// (selects the codec) or a legacy controller's first Request.
	payload, err := readRawFrame(wc.br, wc.rbuf)
	if err != nil {
		return
	}
	wc.rbuf = payload
	var probe HandshakeProbe
	if err := json.Unmarshal(payload, &probe); err != nil {
		return
	}
	if probe.Proto != nil {
		wc.proto = min(*probe.Proto, ProtoTraced)
		wc.binary = wc.proto >= ProtoBinary
	} else {
		// Legacy JSON controller: the probe frame was its first query.
		reply := s.serve(probe.ID, probe.Batch, probe.Model)
		if err := wc.writeReply(reply); err != nil {
			return
		}
	}
	queued := 0 // replies buffered but not yet flushed
	for {
		var id int64
		var batch int
		var model string
		var traced bool
		if wc.binary {
			bid, bbatch, bmodel, btraced, err := wc.readBinaryRequest()
			if err != nil {
				if s.drainExit(err) {
					wc.flush()
				}
				return
			}
			id, batch, traced = bid, bbatch, btraced
			// Compare in place; the conversion in the comparison below does
			// not allocate, and s.serve only needs the name on mismatch.
			if len(bmodel) > 0 && string(bmodel) != s.Model.Name {
				model = string(bmodel)
			} else {
				model = s.Model.Name
			}
		} else {
			var req Request
			if err := ReadFrame(wc.br, &req); err != nil {
				if s.drainExit(err) {
					wc.flush()
				}
				return
			}
			id, batch, model, traced = req.ID, req.Batch, req.Model, req.Trace
		}
		reply := s.validate(id, batch, model)
		if reply.Err == "" {
			serviceMS := s.Model.Latency(s.TypeName, batch)
			// A reply may only be withheld across the next service if that
			// service is cheaper than the syscall being saved — never delay
			// an already-finished query's completion behind a real model
			// sleep.
			if queued > 0 && time.Duration(serviceMS*s.TimeScale*float64(time.Millisecond)) > promptReplyBudget {
				if err := wc.flush(); err != nil {
					return
				}
				queued = 0
			}
			reply = s.execute(id, serviceMS, traced)
		} else if traced {
			reply.Traced = true
		}
		if err := wc.queueReply(reply); err != nil {
			return
		}
		queued++
		// Coalesce: only flush when the next request is not already waiting
		// in the read buffer, so a dispatch burst is answered in one syscall.
		if wc.br.Buffered() == 0 {
			if err := wc.flush(); err != nil {
				return
			}
			queued = 0
		}
	}
}

// promptReplyBudget bounds how much emulated service time may pass in
// front of an unflushed reply: batching replies across sub-syscall-cost
// sleeps (time-compressed benchmarks) is free, while at real time scales
// every reply precedes the next query's sleep.
const promptReplyBudget = 100 * time.Microsecond

// validate checks a request against the hosted model and calibrated batch
// range; the returned Reply carries an error on rejection and is the
// zero-valued success otherwise.
func (s *InstanceServer) validate(id int64, batch int, model string) Reply {
	if model != "" && model != s.Model.Name {
		return Reply{ID: id, Err: fmt.Sprintf("instance serves model %s, not %s", s.Model.Name, model)}
	}
	if batch < 1 || batch > models.MaxBatch {
		return Reply{ID: id, Err: fmt.Sprintf("batch %d outside [1,%d]", batch, models.MaxBatch)}
	}
	return Reply{ID: id}
}

// execute performs the (emulated) inference for a validated request.
// Traced requests additionally measure how long they waited for the
// serve slot (the instance serves one query at a time, so requests
// queue on s.mu) and carry it back as Reply.WaitNS.
func (s *InstanceServer) execute(id int64, serviceMS float64, traced bool) Reply {
	var t0 time.Time
	if traced {
		t0 = time.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := Reply{ID: id, ServiceMS: serviceMS}
	if traced {
		rep.Traced = true
		rep.WaitNS = int64(time.Since(t0))
	}
	time.Sleep(time.Duration(serviceMS * s.TimeScale * float64(time.Millisecond)))
	return rep
}

// serve validates and executes one request.
func (s *InstanceServer) serve(id int64, batch int, model string) Reply {
	if rep := s.validate(id, batch, model); rep.Err != "" {
		return rep
	}
	return s.execute(id, s.Model.Latency(s.TypeName, batch), false)
}
