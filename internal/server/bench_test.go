package server

import (
	"sync/atomic"
	"testing"

	"kairos/internal/models"
	"kairos/internal/sim"
)

// BenchmarkFrames measures each wire codec in both hot directions —
// request encode (per-dispatch) and reply decode (per-completion) — for
// the JSON fallback and the negotiated binary encoding. The cases are
// shared with cmd/kairos-microbench so BENCH_micro.json tracks exactly
// these loops.
func BenchmarkFrames(b *testing.B) {
	for _, c := range FrameBenchCases() {
		b.Run(c.Name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			if err := c.Loop(b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// runThroughput runs closed-loop submitters on every P against the
// cluster. ops/sec is the sustained Submit→complete throughput the serving
// layer can carry; allocs/op is the whole-process allocation cost per
// served query (controller + instance servers).
func runThroughput(b *testing.B, cluster *BenchCluster) {
	var worker int64
	b.SetParallelism(32) // enough in-flight load to fill deep per-instance pipelines
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := atomic.AddInt64(&worker, 1)
		if err := cluster.Worker(w, pb.Next); err != nil {
			b.Error(err)
		}
	})
}

// benchScale compresses emulated service to ~ns so the wire + scheduler
// path is the measured cost, not the sleep.
const benchScale = 1e-6

// BenchmarkControllerThroughput is the serving-path headline: the whole
// live path on loopback (2 models, 4 instance servers) under the
// zero-alloc LeastBacklog policy, so the wire format, locking, and
// scheduling machinery are what is measured.
func BenchmarkControllerThroughput(b *testing.B) {
	cluster, err := StartBenchCluster(benchScale, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cluster.Close)
	runThroughput(b, cluster)
}

// BenchmarkControllerThroughputKairosPolicy is the same loop under the
// real matching policy: serving path plus per-round Assign cost.
func BenchmarkControllerThroughputKairosPolicy(b *testing.B) {
	cluster, err := StartBenchCluster(benchScale, func(m models.Model, types []string) sim.Distributor {
		return kairosPolicy(m, types)
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cluster.Close)
	runThroughput(b, cluster)
}
