package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
)

// wireConn wraps one TCP connection with buffered I/O and the negotiated
// codec. Writers queue frames into the buffered writer and flush
// explicitly, so a dispatch burst to one instance is a single syscall
// instead of two writes per tiny frame. Reads are single-goroutine (each
// side runs one read loop per connection) and reuse one scratch buffer;
// writes are serialized by wmu.
type wireConn struct {
	conn net.Conn
	br   *bufio.Reader
	// binary and proto are set once during the handshake, before
	// concurrent use. proto is the negotiated wire version; binary is
	// proto >= ProtoBinary, kept separate for the hot-path branch.
	binary bool
	proto  int

	wmu  sync.Mutex
	bw   *connWriter
	fbuf []byte // encode scratch, guarded by wmu
	rbuf []byte // read scratch, owned by the reading goroutine
}

// connWriter is a minimal buffered writer over the conn; unlike
// bufio.Writer it never auto-flushes mid-frame — frames larger than the
// remaining space flush the buffer first, so the wire always carries whole
// frames per syscall. A write failure is sticky: the buffer's contents
// were (partially) dropped, so every later queue and flush keeps
// reporting the error — a round that queued frames before the failure
// still learns about it from its final flush and can undo the whole
// burst.
type connWriter struct {
	conn net.Conn
	buf  []byte
	n    int
	err  error // first write failure; the connection is dead after it
}

// Write implements io.Writer for the JSON path (WriteFrame): bytes land
// in the buffer and reach the socket at the next flush.
func (cw *connWriter) Write(p []byte) (int, error) {
	if err := cw.queue(p); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (cw *connWriter) queue(frame []byte) error {
	if cw.err != nil {
		return cw.err
	}
	if cw.n+len(frame) > len(cw.buf) {
		if err := cw.flush(); err != nil {
			return err
		}
		if len(frame) > len(cw.buf) {
			if _, err := cw.conn.Write(frame); err != nil {
				cw.err = err
				return err
			}
			return nil
		}
	}
	cw.n += copy(cw.buf[cw.n:], frame)
	return nil
}

func (cw *connWriter) flush() error {
	if cw.err != nil {
		return cw.err
	}
	if cw.n == 0 {
		return nil
	}
	_, err := cw.conn.Write(cw.buf[:cw.n])
	cw.n = 0
	cw.err = err
	return err
}

const wireBufSize = 16 << 10

func newWireConn(conn net.Conn) *wireConn {
	return &wireConn{
		conn: conn,
		br:   bufio.NewReaderSize(conn, wireBufSize),
		bw:   &connWriter{conn: conn, buf: make([]byte, wireBufSize)},
	}
}

func (w *wireConn) close() error { return w.conn.Close() }

// writeJSON frames v as JSON and flushes immediately (handshake frames).
func (w *wireConn) writeJSON(v any) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	if err := WriteFrame(w.bw, v); err != nil {
		return err
	}
	return w.bw.flush()
}

// queueRequest encodes req with the negotiated codec into the write
// buffer without flushing; callers coalesce a burst and flush once. A
// trace flag is dropped when the peer predates ProtoTraced: the query
// still serves, it just loses its instance-wait sample.
func (w *wireConn) queueRequest(req Request) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	if req.Trace && w.binary && w.proto < ProtoTraced {
		req.Trace = false
	}
	if !w.binary {
		return WriteFrame(w.bw, req)
	}
	frame, err := AppendRequestFrame(w.fbuf[:0], req)
	if err != nil {
		return err
	}
	w.fbuf = frame
	return w.bw.queue(frame)
}

// queueReply encodes rep with the negotiated codec into the write buffer
// without flushing; the instance loop flushes once no further request is
// already buffered, so a burst of served queries is one syscall.
func (w *wireConn) queueReply(rep Reply) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	if !w.binary {
		return WriteFrame(w.bw, rep)
	}
	frame, err := AppendReplyFrame(w.fbuf[:0], rep)
	if err != nil {
		return err
	}
	w.fbuf = frame
	return w.bw.queue(frame)
}

// writeReply queues rep and flushes immediately.
func (w *wireConn) writeReply(rep Reply) error {
	if err := w.queueReply(rep); err != nil {
		return err
	}
	return w.flush()
}

// flush pushes every queued frame to the socket.
func (w *wireConn) flush() error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return w.bw.flush()
}

// readFrame reads one length-prefixed payload from the buffered reader.
// When the whole frame already fits the bufio window it is returned as a
// zero-copy view into the buffer (valid only until the next read on the
// connection — the single-reader loops decode immediately); larger frames
// fall back to the copying path through the scratch buffer.
func (w *wireConn) readFrame() ([]byte, error) {
	hdr, err := w.br.Peek(4)
	if err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr))
	if n > MaxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds limit", n)
	}
	if p, err := w.br.Peek(4 + n); err == nil {
		w.br.Discard(4 + n)
		return p[4:], nil
	}
	// Frame longer than the buffered window: copy through the scratch.
	p, err := readRawFrame(w.br, w.rbuf)
	if err != nil {
		return nil, err
	}
	w.rbuf = p[:0]
	return p, nil
}

// readReply reads one reply with the negotiated codec (controller side).
func (w *wireConn) readReply(rep *Reply) error {
	if !w.binary {
		return ReadFrame(w.br, rep)
	}
	p, err := w.readFrame()
	if err != nil {
		return err
	}
	r, err := DecodeReplyFrame(p)
	if err != nil {
		return err
	}
	*rep = r
	return nil
}

// readBinaryRequest reads one binary request (instance side, negotiated
// connections). The model bytes alias the read buffer and are only
// valid until the next read.
func (w *wireConn) readBinaryRequest() (id int64, batch int, model []byte, traced bool, err error) {
	p, err := w.readFrame()
	if err != nil {
		return 0, 0, nil, false, err
	}
	return DecodeRequestFrame(p)
}
