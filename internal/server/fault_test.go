package server

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"kairos/internal/cloud"
	"kairos/internal/models"
)

// listenLocal opens a loopback listener that the test owns.
func listenLocal(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return ln
}

// fakeInstance is a handshaking instance server that swallows every
// request and never replies, dying when its die channel closes — the
// minimal stand-in for a wedged-then-crashed kairosd.
func fakeInstance(t *testing.T, typeName, model string) (addr string, die chan struct{}) {
	t.Helper()
	ln := listenLocal(t)
	die = make(chan struct{})
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if err := WriteFrame(conn, Hello{TypeName: typeName, Model: model}); err != nil {
			return
		}
		go func() {
			var req Request
			for ReadFrame(conn, &req) == nil {
			}
		}()
		<-die
		conn.Close()
	}()
	return ln.Addr().String(), die
}

// TestOnInstanceDownFiresOnEviction: the instance-down callback must
// report every eviction with the model, type, address, and cause, and
// must not fire for an orderly RemoveInstance.
func TestOnInstanceDownFiresOnEviction(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	fakeAddr, die := fakeInstance(t, cloud.G4dnXlarge.Name, m.Name)
	healthy := startServer(t, cloud.R5nLarge.Name, 1)
	types := []string{cloud.G4dnXlarge.Name, cloud.R5nLarge.Name}
	ctrl, err := NewController(m.Name, kairosPolicy(m, types), 1, m.Latency, []string{fakeAddr, healthy.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	type downEvent struct {
		model, typeName, addr string
		cause                 error
	}
	events := make(chan downEvent, 4)
	ctrl.SetOnInstanceDown(func(model, typeName, addr string, cause error) {
		events <- downEvent{model, typeName, addr, cause}
	})

	// An orderly removal of the healthy instance must not raise a fault.
	if _, err := ctrl.RemoveInstance(m.Name, cloud.R5nLarge.Name); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		t.Fatalf("orderly RemoveInstance raised a down event: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}

	close(die) // crash
	select {
	case ev := <-events:
		if ev.model != m.Name || ev.typeName != cloud.G4dnXlarge.Name || ev.addr != fakeAddr {
			t.Fatalf("down event = %+v", ev)
		}
		if ev.cause == nil {
			t.Fatal("down event must carry the cause")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("eviction never reached the instance-down callback")
	}
}

// TestEmptyHoldParksAndRescues: with an empty-hold window, a group that
// loses its only instance parks in-flight and new queries instead of
// failing them, and AddInstance within the window rescues every one.
func TestEmptyHoldParksAndRescues(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	fakeAddr, die := fakeInstance(t, cloud.G4dnXlarge.Name, m.Name)
	ctrl, err := NewController(m.Name, kairosPolicy(m, []string{cloud.G4dnXlarge.Name, cloud.R5nLarge.Name}), 1, m.Latency, []string{fakeAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.SetEmptyHold(10 * time.Second)

	// Queries dispatch to the fake instance and wedge there.
	var chans []<-chan QueryResult
	for i := 0; i < 3; i++ {
		chans = append(chans, ctrl.Submit(m.Name, 100))
	}
	waitPending(t, ctrl)
	close(die) // the only instance crashes; the group is empty

	deadline := time.Now().Add(5 * time.Second)
	for len(ctrl.InstanceTypes()) != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := ctrl.InstanceTypes(); len(got) != 0 {
		t.Fatalf("dead instance not evicted: fleet %v", got)
	}

	// The group is capacity-less but held: new submissions park too.
	chans = append(chans, ctrl.Submit(m.Name, 50))
	select {
	case r := <-chans[0]:
		t.Fatalf("held query delivered during the hold window: %+v", r)
	case <-time.After(50 * time.Millisecond):
	}

	// Capacity returns within the window: every held query completes.
	replacement := startServer(t, cloud.R5nLarge.Name, 1)
	if _, err := ctrl.AddInstance(replacement.Addr()); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.Err != nil {
				t.Fatalf("held query %d dropped: %v", i, r.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("held query %d never rescued", i)
		}
	}
	s := ctrl.Stats()
	if s.Failed != 0 || s.Completed != int64(len(chans)) {
		t.Fatalf("stats = %+v", s)
	}
}

// TestEmptyHoldExpiryFailsParkedQueries: the hold window is a bound, not
// a hang — if capacity never returns, the parked queries fail once the
// timer fires.
func TestEmptyHoldExpiryFailsParkedQueries(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	fakeAddr, die := fakeInstance(t, cloud.G4dnXlarge.Name, m.Name)
	ctrl, err := NewController(m.Name, kairosPolicy(m, []string{cloud.G4dnXlarge.Name}), 1, m.Latency, []string{fakeAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.SetEmptyHold(150 * time.Millisecond)

	ch := ctrl.Submit(m.Name, 100)
	waitPending(t, ctrl)
	close(die)

	select {
	case r := <-ch:
		if r.Err == nil {
			t.Fatal("query completed with no instance serving it")
		}
		if !strings.Contains(r.Err.Error(), "hold window expired") {
			t.Fatalf("unexpected failure cause: %v", r.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hold window never expired")
	}
	s := ctrl.Stats()
	if s.Failed != 1 || s.Completed != 0 || s.Waiting != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestEmptyHoldZeroKeepsFailFast: without a hold window (the default),
// submissions to a capacity-less group fail immediately, as before.
func TestEmptyHoldZeroKeepsFailFast(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	fakeAddr, die := fakeInstance(t, cloud.G4dnXlarge.Name, m.Name)
	ctrl, err := NewController(m.Name, kairosPolicy(m, []string{cloud.G4dnXlarge.Name}), 1, m.Latency, []string{fakeAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	close(die)
	deadline := time.Now().Add(5 * time.Second)
	for len(ctrl.InstanceTypes()) != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	select {
	case r := <-ctrl.Submit(m.Name, 100):
		if r.Err == nil {
			t.Fatal("capacity-less submit must fail fast by default")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("capacity-less submit hung with no hold window configured")
	}
}

// TestRedispatchPreservesCompletedPlusFailedInvariant hammers a crashing
// instance while snapshotting stats: in every snapshot completed+failed
// must not exceed submitted, and after the crash every admitted query
// must still be delivered exactly once.
func TestRedispatchPreservesCompletedPlusFailedInvariant(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	fakeAddr, die := fakeInstance(t, cloud.G4dnXlarge.Name, m.Name)
	healthy := startServer(t, cloud.R5nLarge.Name, 1)
	types := []string{cloud.G4dnXlarge.Name, cloud.R5nLarge.Name}
	ctrl, err := NewController(m.Name, kairosPolicy(m, types), 1, m.Latency, []string{fakeAddr, healthy.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	stop := make(chan struct{})
	var snapErr error
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := ctrl.Stats()
			if s.Completed+s.Failed > s.Submitted {
				snapErr = &statErr{s}
				return
			}
		}
	}()

	const n = 64
	var wg sync.WaitGroup
	results := make(chan QueryResult, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(batch int) {
			defer wg.Done()
			results <- ctrl.SubmitWait(m.Name, batch)
		}(1 + i%900)
	}
	time.Sleep(10 * time.Millisecond)
	close(die)
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if snapErr != nil {
		t.Fatalf("invariant violated: %v", snapErr)
	}
	close(results)
	delivered := 0
	for r := range results {
		delivered++
		if r.Err != nil {
			t.Fatalf("admitted query dropped: %v", r.Err)
		}
	}
	if delivered != n {
		t.Fatalf("delivered %d of %d", delivered, n)
	}
}

type statErr struct{ s Stats }

func (e *statErr) Error() string { return "completed+failed > submitted" }

// waitPending blocks until some instance reports pending queries.
func waitPending(t *testing.T, ctrl *Controller) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s := ctrl.Stats()
		for _, inst := range s.Instances {
			if inst.Pending > 0 {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no query ever dispatched")
}
