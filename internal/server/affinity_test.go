package server

import (
	"bytes"
	"testing"
	"time"

	"kairos/internal/cloud"
	"kairos/internal/models"
	"kairos/internal/sim"
)

func TestSessionHash(t *testing.T) {
	if SessionHash(nil) == 0 || SessionHash([]byte("user-1")) == 0 {
		t.Fatal("zero hash is reserved for no-session")
	}
	if SessionHash([]byte("user-1")) != SessionHash([]byte("user-1")) {
		t.Fatal("hash must be deterministic")
	}
	if SessionHash([]byte("user-1")) == SessionHash([]byte("user-2")) {
		t.Fatal("distinct keys should not collide")
	}
}

func TestAffinityRingPick(t *testing.T) {
	a := &remoteInstance{addr: "10.0.0.1:9000", byID: map[int64]*pendingQuery{}}
	b := &remoteInstance{addr: "10.0.0.2:9000", byID: map[int64]*pendingQuery{}}
	c := &remoteInstance{addr: "10.0.0.3:9000", byID: map[int64]*pendingQuery{}}
	var r affinityRing
	r.rebuild([]*remoteInstance{a, b, c})
	if len(r.entries) != 3*affinityVNodes {
		t.Fatalf("ring has %d entries, want %d", len(r.entries), 3*affinityVNodes)
	}
	// Deterministic: the same session maps to the same instance.
	s := SessionHash([]byte("session-42"))
	first := r.pick(s, 1)
	if first == nil {
		t.Fatal("pick on an idle ring must succeed")
	}
	for i := 0; i < 10; i++ {
		if got := r.pick(s, 1); got != first {
			t.Fatalf("pick is not stable: %s then %s", first.addr, got.addr)
		}
	}
	// Bounded load: saturate the preferred instance and the session spills
	// to another — but never to a nil when capacity exists elsewhere.
	first.pending = make([]*pendingQuery, 3)
	spill := r.pick(s, 3)
	if spill == nil || spill == first {
		t.Fatalf("saturated pick = %v, want a different live instance", spill)
	}
	// Draining instances vanish from a rebuilt ring.
	first.draining = true
	r.rebuild([]*remoteInstance{a, b, c})
	if len(r.entries) != 2*affinityVNodes {
		t.Fatalf("ring keeps draining instance: %d entries", len(r.entries))
	}
	for _, e := range r.entries {
		if e.ri == first {
			t.Fatal("draining instance still on the ring")
		}
	}
	// Everything saturated: pick yields so the policy decides.
	a.pending = make([]*pendingQuery, 5)
	b.pending = make([]*pendingQuery, 5)
	c.pending = make([]*pendingQuery, 5)
	if got := r.pick(s, 2); got != nil {
		t.Fatalf("fully saturated ring must yield, got %s", got.addr)
	}
}

func TestAffinityBound(t *testing.T) {
	// Idle group, 2 instances: bound = ceil(5·1/8) = 1 — an idle preferred
	// instance always qualifies.
	if got := affinityBound(0, 2); got != 1 {
		t.Fatalf("affinityBound(0,2) = %d", got)
	}
	// backlog 8 over 2 instances: fair share is ~4.5, bound caps at 25%
	// over: ceil(5·9/8) = 6.
	if got := affinityBound(8, 2); got != 6 {
		t.Fatalf("affinityBound(8,2) = %d", got)
	}
	if got := affinityBound(10, 0); got != 0 {
		t.Fatalf("affinityBound with no instances = %d", got)
	}
}

// TestSessionAffinityStickiness: with two instances of distinct types,
// every query of one session lands on the same instance, and a second
// session is also internally consistent.
func TestSessionAffinityStickiness(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	types := []string{cloud.G4dnXlarge.Name, cloud.R5nLarge.Name}
	addrs := startCluster(t, types, 1)
	ctrl, err := NewController(m.Name, sim.LeastLoaded{}, 1, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	served := func(session string, n int) map[string]int {
		t.Helper()
		got := map[string]int{}
		opts := SubmitOptions{SessionHash: SessionHash([]byte(session))}
		for i := 0; i < n; i++ {
			res := ctrl.SubmitWaitOpts(m.Name, 10, opts)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			got[res.Instance]++
		}
		return got
	}
	for _, session := range []string{"alice", "bob", "carol"} {
		got := served(session, 25)
		if len(got) != 1 {
			t.Fatalf("session %q split across instances: %v", session, got)
		}
	}
}

// neverAssign parks every query: what a deadline test needs.
type neverAssign struct{}

func (neverAssign) Name() string { return "never" }
func (neverAssign) Assign(float64, []sim.QueryView, []sim.InstanceView) []sim.Assignment {
	return nil
}

func TestSubmitDeadline(t *testing.T) {
	t.Parallel()
	m := models.MustByName("NCF")
	types := []string{cloud.G4dnXlarge.Name}
	addrs := startCluster(t, types, 1)
	ctrl, err := NewController(m.Name, neverAssign{}, 1, m.Latency, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	start := time.Now()
	res := ctrl.SubmitWaitOpts(m.Name, 10, SubmitOptions{Deadline: time.Now().Add(20 * time.Millisecond)})
	if res.Err == nil || res.Err.Error() != DeadlineExceededMsg {
		t.Fatalf("expired query returned %v, want %q", res.Err, DeadlineExceededMsg)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("deadline delivery took %v", waited)
	}
	// Without a deadline under the same policy the query would hang — the
	// sweep must not touch deadline-free queries. Give one a session too,
	// to cover the affinity+deadline combination.
	res = ctrl.SubmitWaitOpts(m.Name, 10, SubmitOptions{
		SessionHash: SessionHash([]byte("s")),
		Deadline:    time.Now().Add(20 * time.Millisecond),
	})
	// The affinity pass dispatches session queries itself, bypassing the
	// policy — so this one actually serves.
	if res.Err != nil {
		t.Fatalf("session query under never-assign policy: %v", res.Err)
	}
}

func TestSessionRequestFrameRoundTrip(t *testing.T) {
	req := Request{ID: 77, Model: "NCF", Batch: 123, Trace: true, Session: "user-9", DeadlineMS: 1500}
	frame, err := AppendRequestFrame(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if frame[4] != frameRequestSession {
		t.Fatalf("frame kind = %#x, want session kind", frame[4])
	}
	rv, err := DecodeRequestView(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	if rv.ID != 77 || rv.Batch != 123 || !rv.Traced ||
		!bytes.Equal(rv.Model, []byte("NCF")) || !bytes.Equal(rv.Session, []byte("user-9")) ||
		rv.DeadlineMS != 1500 {
		t.Fatalf("decoded view %+v", rv)
	}
	// A plain request still decodes through the view (legacy kind).
	plain, err := AppendRequestFrame(nil, Request{ID: 5, Model: "NCF", Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if plain[4] != frameRequest {
		t.Fatalf("plain frame kind = %#x", plain[4])
	}
	rv, err = DecodeRequestView(plain[4:])
	if err != nil {
		t.Fatal(err)
	}
	if rv.ID != 5 || rv.Batch != 8 || len(rv.Session) != 0 || rv.DeadlineMS != 0 {
		t.Fatalf("decoded plain view %+v", rv)
	}
	// Session keys over the wire limit are rejected at encode time.
	if _, err := AppendRequestFrame(nil, Request{ID: 1, Model: "m", Batch: 1, Session: string(make([]byte, 256))}); err == nil {
		t.Fatal("oversized session key must be rejected")
	}
}
