package kairos

import (
	"fmt"
	"sort"
	"sync"

	"kairos/internal/core"
	"kairos/internal/distributor"
	"kairos/internal/pop"
	"kairos/internal/predictor"
	"kairos/internal/sim"
)

// Default policy parameters used when PolicyContext leaves them zero.
const (
	// DefaultDRSThreshold routes batch > threshold to the base pool; it is
	// the hill-climbing tuner's starting point (see distributor.TuneDRSThreshold).
	DefaultDRSThreshold = 150
	// DefaultPartitions is the POP partition count for "kairos+partitioned".
	DefaultPartitions = 2
)

// PolicyContext is what the engine resolves before asking a policy factory
// for a distributor: the deployment (pool + model), the shared query
// monitor, and the per-policy tuning knobs.
type PolicyContext struct {
	// Pool is the ordered set of instance types the distributor serves.
	Pool Pool
	// Model is the served workload (QoS target + latency surface).
	Model Model
	// Monitor optionally receives every completed query's batch size so the
	// planner can track the workload mix. May be nil.
	Monitor *Monitor
	// DRSThreshold is the DRS routing threshold; 0 uses DefaultDRSThreshold.
	DRSThreshold int
	// Partitions is the POP partition count; 0 uses DefaultPartitions.
	Partitions int
}

// validate checks the fields every factory depends on.
func (ctx PolicyContext) validate() error {
	if len(ctx.Pool) == 0 {
		return fmt.Errorf("kairos: policy context needs a non-empty pool")
	}
	if ctx.Model.QoS <= 0 {
		return fmt.Errorf("kairos: policy context needs a model with a positive QoS target (got %v)", ctx.Model.QoS)
	}
	return nil
}

// PolicyFactory builds a fresh distributor for a resolved context. The
// engine calls it once per Serve and once per simulation probe, so stateful
// policies (online learners) start each evaluation from a clean slate.
type PolicyFactory func(ctx PolicyContext) (Distributor, error)

var (
	policyMu sync.RWMutex
	policies = map[string]PolicyFactory{}
)

// RegisterPolicy adds a named policy to the registry. It errors on an empty
// name, a nil factory, or a name already taken — downstream code extends
// the registry but never silently replaces a builtin.
func RegisterPolicy(name string, factory PolicyFactory) error {
	if name == "" {
		return fmt.Errorf("kairos: policy name must be non-empty")
	}
	if factory == nil {
		return fmt.Errorf("kairos: policy %q needs a non-nil factory", name)
	}
	policyMu.Lock()
	defer policyMu.Unlock()
	if _, dup := policies[name]; dup {
		return fmt.Errorf("kairos: policy %q already registered", name)
	}
	policies[name] = factory
	return nil
}

// Policies lists the registered policy names in sorted order — the value
// set for a -policy command-line flag.
func Policies() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	out := make([]string, 0, len(policies))
	for name := range policies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HasPolicy reports whether a policy name resolves.
func HasPolicy(name string) bool {
	policyMu.RLock()
	defer policyMu.RUnlock()
	_, ok := policies[name]
	return ok
}

// NewPolicy resolves a registered policy by name and builds a distributor
// for the context.
func NewPolicy(name string, ctx PolicyContext) (Distributor, error) {
	policyMu.RLock()
	factory, ok := policies[name]
	policyMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("kairos: unknown policy %q (have %v)", name, Policies())
	}
	if err := ctx.validate(); err != nil {
		return nil, err
	}
	return factory(ctx)
}

// mustRegister is the init-time registration path for the builtins.
func mustRegister(name string, factory PolicyFactory) {
	if err := RegisterPolicy(name, factory); err != nil {
		panic(err)
	}
}

// warmedKairos builds the paper's distributor with the latency model
// pre-trained from the calibrated surfaces.
func warmedKairos(ctx PolicyContext) Distributor {
	names := make([]string, len(ctx.Pool))
	for i, t := range ctx.Pool {
		names[i] = t.Name
	}
	return core.NewDistributor(core.DistributorOptions{
		QoS:       ctx.Model.QoS,
		BaseType:  ctx.Pool.Base().Name,
		Predictor: predictor.Warmed(ctx.Model.Latency, names, []int{1, 250, 500, 750, 1000}),
		Monitor:   ctx.Monitor,
	})
}

// baselinePolicyOptions wires the ground-truth latency oracle the paper
// grants the competing schemes, validated once for all baseline factories
// (a degenerate pool with an unnamed base type is caught here instead of
// panicking inside the constructor).
func baselinePolicyOptions(ctx PolicyContext) (distributor.Options, error) {
	opts := distributor.Options{
		QoS:       ctx.Model.QoS,
		BaseType:  ctx.Pool.Base().Name,
		Predictor: predictor.Oracle{Latency: ctx.Model.Latency},
	}
	return opts, opts.Validate()
}

// The builtin policy set: the paper's mechanism in three flavors, the three
// competing schemes of Sec. 7, and the two naive ablation baselines.
func init() {
	mustRegister("kairos", func(ctx PolicyContext) (Distributor, error) {
		return core.NewDistributor(core.DistributorOptions{
			QoS:      ctx.Model.QoS,
			BaseType: ctx.Pool.Base().Name,
			Monitor:  ctx.Monitor,
		}), nil
	})
	mustRegister("kairos+warm", func(ctx PolicyContext) (Distributor, error) {
		return warmedKairos(ctx), nil
	})
	mustRegister("kairos+partitioned", func(ctx PolicyContext) (Distributor, error) {
		k := ctx.Partitions
		if k == 0 {
			k = DefaultPartitions
		}
		if k < 1 {
			return nil, fmt.Errorf("kairos: partitions must be >= 1 (got %d)", k)
		}
		return pop.NewPartitioned(k, func(partition int) sim.Distributor {
			inner := PolicyContext{Pool: ctx.Pool, Model: ctx.Model}
			// Partitioned fans every observation out to all partitions
			// (latency knowledge is global), so exactly one inner policy
			// holds the shared monitor to avoid multiply-counting queries.
			if partition == 0 {
				inner.Monitor = ctx.Monitor
			}
			return warmedKairos(inner)
		}), nil
	})
	mustRegister("ribbon", func(ctx PolicyContext) (Distributor, error) {
		opts, err := baselinePolicyOptions(ctx)
		if err != nil {
			return nil, err
		}
		return distributor.NewRibbon(opts), nil
	})
	mustRegister("drs", func(ctx PolicyContext) (Distributor, error) {
		t := ctx.DRSThreshold
		if t == 0 {
			t = DefaultDRSThreshold
		}
		if t < 0 {
			return nil, fmt.Errorf("kairos: DRS threshold must be >= 0 (got %d)", t)
		}
		opts, err := baselinePolicyOptions(ctx)
		if err != nil {
			return nil, err
		}
		return distributor.NewDRS(opts, t), nil
	})
	mustRegister("clockwork", func(ctx PolicyContext) (Distributor, error) {
		opts, err := baselinePolicyOptions(ctx)
		if err != nil {
			return nil, err
		}
		return distributor.NewClockwork(opts), nil
	})
	mustRegister("fcfs", func(ctx PolicyContext) (Distributor, error) {
		return sim.FCFSAny{}, nil
	})
	mustRegister("least-loaded", func(ctx PolicyContext) (Distributor, error) {
		return sim.LeastLoaded{}, nil
	})
}
