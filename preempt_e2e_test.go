package kairos

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"kairos/internal/soak"
)

// spotInstanceAddr returns one live instance whose type is a spot
// variant, preferring the given model; the empty string when none exists.
func spotInstanceAddr(ap *Autopilot, model string) string {
	fallback := ""
	for _, is := range ap.Controller().Stats().Instances {
		if is.Draining || !strings.HasSuffix(is.TypeName, ":spot") {
			continue
		}
		if is.Model == model {
			return is.Addr
		}
		fallback = is.Addr
	}
	return fallback
}

// TestSpotFleetPreemptionEndToEnd is the spot-market acceptance run: a
// 2-model fleet planned over a spot-discounted pool serves external HTTP
// traffic while one spot instance receives a scheduled revocation notice.
// The autopilot must drain it ahead of the deadline, replan around the
// hole before the deadline expires, drop zero external queries, and leave
// the preemption visible in the decision journal and on /metrics.
// Guarded by -short; CI runs it under -race.
func TestSpotFleetPreemptionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping spot preemption e2e in -short mode")
	}
	t.Parallel()
	pool := DefaultPool().WithSpotMarket(0.7, 0.05)
	e := multiEngine(t, WithPool(pool)) // NCF + MT-WND, shared $0.9/hr

	fleet := NewFleet(1, e.Models()...)
	ap, err := e.Autopilot(1, AutopilotOptions{
		Interval:        25 * time.Millisecond,
		Cooldown:        50 * time.Millisecond,
		Window:          300,
		MinObservations: 100,
		OnDemandFloor:   0.5,
	},
		WithProvider(fleet),
		WithIngress("127.0.0.1:0", "127.0.0.1:0"),
		WithIngressQueue(8192),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Close()
	ap.Start()
	adminAddr, err := ap.StartAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// A 70% discount must pull the plan onto spot capacity.
	initial := ap.Current()
	if initial["NCF"].Total() == 0 || initial["MT-WND"].Total() == 0 {
		t.Fatalf("initial plan must serve both models: %v", initial)
	}
	spotCount := 0
	for i, ty := range pool {
		if strings.HasSuffix(ty.Name, ":spot") {
			for _, cfg := range initial {
				spotCount += cfg[i]
			}
		}
	}
	if spotCount == 0 {
		t.Fatalf("70%% spot discount bought no spot capacity: %v", initial)
	}

	ing := ap.Ingress()
	url := "http://" + ing.HTTPAddr() + "/submit"
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	load := func(model string, n int, batch int, gap time.Duration) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := httpSubmit(client, url, model, batch); err != nil {
					errs <- err
				}
			}()
			time.Sleep(gap)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("%s query dropped: %v", model, err)
		}
	}

	// Warm external load so the preemption lands on a serving fleet.
	load("NCF", 80, 40, time.Millisecond)
	load("MT-WND", 60, 50, time.Millisecond)

	target := spotInstanceAddr(ap, "NCF")
	if target == "" {
		t.Fatalf("no spot instance to preempt in plan %v", ap.Current())
	}
	deadline, err := fleet.Preempt(target, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Load keeps flowing across the notice, drain, and replan.
	load("NCF", 80, 40, time.Millisecond)

	// The notice must be answered — drained AND replanned — before the
	// revocation deadline.
	for {
		_, drained, replanned, deaths := ap.PreemptState()
		if deaths != 0 {
			t.Fatalf("the drain lost the race against a %s notice", time.Until(deadline))
		}
		if drained >= 1 && replanned >= 1 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("notice not answered by the deadline: drained=%d replanned=%d", drained, replanned)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The reshaped fleet still serves both models, drop-free.
	load("NCF", 40, 40, time.Millisecond)
	load("MT-WND", 40, 50, time.Millisecond)
	st := ap.Controller().Stats()
	if st.Failed != 0 {
		t.Fatalf("%d queries dropped across the preemption", st.Failed)
	}

	// The journal carries the preempt kind with both latencies.
	sawPreempt := false
	for _, ev := range ap.Decisions() {
		if ev.Kind != "preempt" {
			continue
		}
		if ev.Err != "" {
			t.Fatalf("preempt journal entry carries an error: %+v", ev)
		}
		if ev.PreemptDrainMS <= 0 || ev.PreemptReplanMS < ev.PreemptDrainMS {
			t.Fatalf("preempt latencies malformed: %+v", ev)
		}
		sawPreempt = true
	}
	if !sawPreempt {
		t.Fatalf("no preempt entry in the decision journal: %+v", ap.Decisions())
	}
	status := ap.Status()
	if status.Faults.Preemptions != 1 || status.Faults.PreemptionsDrained != 1 ||
		status.Faults.PreemptionsReplanned != 1 || status.Faults.PreemptionDeadlineDeaths != 0 {
		t.Fatalf("preemption accounting = %+v", status.Faults)
	}

	// Prometheus surface: counters and the drain histogram are exported.
	resp, err := http.Get("http://" + adminAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		"kairos_preemptions_total 1",
		"kairos_preemptions_drained_total 1",
		"kairos_preemptions_replanned_total 1",
		"kairos_preemption_deadline_deaths_total 0",
		"kairos_preemption_drain_seconds_count 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestPreemptionDeadlineRaceEndToEnd forces the race the notice window
// cannot rule out: the noticed instance is stalled (its drain cannot
// finish) so the revocation deadline kills it mid-drain. The autopilot
// must fall back to the eviction path — stranded queries redispatched,
// the death recorded as a deadline loss, the fleet healed — with zero
// dropped external queries. Guarded by -short; CI runs it under -race.
func TestPreemptionDeadlineRaceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping preemption race e2e in -short mode")
	}
	t.Parallel()
	e := multiEngine(t)
	chaos := soak.WrapChaos(NewFleet(1, e.Models()...))
	ap, err := e.Autopilot(1, AutopilotOptions{
		Interval: 25 * time.Millisecond,
	},
		WithProvider(chaos),
		WithIngress("127.0.0.1:0", "127.0.0.1:0"),
		WithIngressQueue(8192),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Close()
	// If the doomed instance is a model's last, its queries must park for
	// the heal instead of failing.
	ap.Controller().SetEmptyHold(10 * time.Second)
	ap.Start()

	ing := ap.Ingress()
	url := "http://" + ing.HTTPAddr() + "/submit"
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}

	// In-flight queries on every NCF instance, then a stall on one so its
	// drain provably cannot complete inside the notice window.
	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := httpSubmit(client, url, "NCF", 500); err != nil {
				errs <- err
			}
		}()
	}
	var target string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline) && target == ""; {
		for _, is := range ap.Controller().Stats().Instances {
			if is.Model == "NCF" && is.Pending > 0 && !is.Draining {
				target = is.Addr
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if target == "" {
		t.Fatal("no busy NCF instance to preempt")
	}
	if err := chaos.SetStall(target, true); err != nil {
		t.Fatal(err)
	}
	// Lift the stall after the deadline has fired, so the controller sees
	// the death and the eviction fallback runs.
	time.AfterFunc(400*time.Millisecond, func() { chaos.SetStall(target, false) })

	if _, err := chaos.Preempt(target, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// The deadline death must be recorded — the drain lost by design.
	raceSeen := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		noticed, drained, _, deaths := ap.PreemptState()
		if deaths == 1 && noticed == 1 {
			if drained != 0 {
				t.Fatalf("a mid-drain death must not also count as drained: drained=%d", drained)
			}
			raceSeen = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !raceSeen {
		t.Fatalf("deadline kill never surfaced as a mid-drain death: %v", ap.Status().Faults)
	}

	// Every stranded query redispatches; nothing is dropped.
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("query dropped in the drain/death race: %v", err)
	}
	if st := ap.Controller().Stats(); st.Failed != 0 {
		t.Fatalf("%d queries dropped in the drain/death race", st.Failed)
	}

	// The eviction fallback heals the hole like any fault.
	healed := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		st := ap.Status()
		if st.Faults.Heals >= 1 && !st.Faults.Pending {
			healed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !healed {
		t.Fatalf("fleet never healed after the deadline death: %+v", ap.Status().Faults)
	}
	journalHasRace := false
	for _, ev := range ap.Decisions() {
		if ev.Kind == "preempt" && strings.Contains(ev.Reason, "died mid-drain") {
			journalHasRace = true
		}
	}
	if !journalHasRace {
		t.Fatal("mid-drain death missing from the decision journal")
	}
}
