package kairos

import (
	"math/rand"
	"testing"
)

func TestFacadeReplanViaEngine(t *testing.T) {
	mon := NewMonitor()
	rng := rand.New(rand.NewSource(2))
	d := DefaultTrace()
	for i := 0; i < 8000; i++ {
		mon.Observe(d.Sample(rng))
	}
	e, err := New(
		WithPool(DefaultPool()),
		WithModelName("RM2"),
		WithBudget(2.5),
		WithMonitor(mon),
	)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Replan()
	if err != nil {
		t.Fatal(err)
	}
	if r.Current().Total() == 0 {
		t.Fatal("empty plan")
	}
	if _, changed, err := r.Check(); err != nil || changed {
		t.Fatalf("no drift expected: changed=%v err=%v", changed, err)
	}
}

func TestFacadePartitionedDistributor(t *testing.T) {
	t.Parallel()
	pool := DefaultPool()
	m, _ := ModelByName("RM2")
	cl, err := NewCluster(pool, Config{2, 0, 10, 0}, m)
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Run(policyOrDie(t, "kairos+partitioned", PolicyContext{Pool: pool, Model: m, Partitions: 2}), RunOptions{
		RatePerSec: 40, DurationMS: 20000, WarmupMS: 4000, Seed: 5,
	})
	if res.Measured.Count == 0 {
		t.Fatal("nothing measured")
	}
	if !res.MeetsQoS {
		t.Fatalf("partitioned controller violates QoS at light load: p99=%.1f", res.P99)
	}
}

func TestFacadeSynthesizeTrace(t *testing.T) {
	tr := SynthesizeTrace(3, DefaultTrace(), 50, 200)
	if len(tr.Arrivals) != 200 {
		t.Fatalf("trace length %d", len(tr.Arrivals))
	}
}

func TestFacadeUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Uniform(5, 9)
	for i := 0; i < 200; i++ {
		if b := d.Sample(rng); b < 5 || b > 9 {
			t.Fatalf("sample %d outside [5,9]", b)
		}
	}
}
