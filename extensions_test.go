package kairos

import (
	"math/rand"
	"testing"
)

func TestFacadeReplanner(t *testing.T) {
	pool := DefaultPool()
	m, _ := ModelByName("RM2")
	mon := NewMonitor()
	rng := rand.New(rand.NewSource(2))
	d := DefaultTrace()
	for i := 0; i < 8000; i++ {
		mon.Observe(d.Sample(rng))
	}
	r, err := NewReplanner(pool, m, 2.5, 0, mon)
	if err != nil {
		t.Fatal(err)
	}
	if r.Current().Total() == 0 {
		t.Fatal("empty plan")
	}
	if _, changed, err := r.Check(); err != nil || changed {
		t.Fatalf("no drift expected: changed=%v err=%v", changed, err)
	}
}

func TestFacadePartitionedDistributor(t *testing.T) {
	t.Parallel()
	pool := DefaultPool()
	m, _ := ModelByName("RM2")
	cl, err := NewCluster(pool, Config{2, 0, 10, 0}, m)
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Run(NewPartitionedDistributor(2, pool, m), RunOptions{
		RatePerSec: 40, DurationMS: 20000, WarmupMS: 4000, Seed: 5,
	})
	if res.Measured.Count == 0 {
		t.Fatal("nothing measured")
	}
	if !res.MeetsQoS {
		t.Fatalf("partitioned controller violates QoS at light load: p99=%.1f", res.P99)
	}
}

func TestFacadeSynthesizeTrace(t *testing.T) {
	tr := SynthesizeTrace(3, DefaultTrace(), 50, 200)
	if len(tr.Arrivals) != 200 {
		t.Fatalf("trace length %d", len(tr.Arrivals))
	}
}
