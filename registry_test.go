package kairos

import (
	"fmt"
	"strings"
	"testing"
)

// stubDistributor is a registry test double.
type stubDistributor struct{ name string }

func (s stubDistributor) Name() string { return s.name }
func (s stubDistributor) Assign(float64, []QueryView, []InstanceView) []Assignment {
	return nil
}

func stubFactory(name string) PolicyFactory {
	return func(PolicyContext) (Distributor, error) { return stubDistributor{name: name}, nil }
}

func TestRegisterPolicyErrors(t *testing.T) {
	cases := []struct {
		name    string
		reg     string
		factory PolicyFactory
		wantErr string
	}{
		{name: "empty name", reg: "", factory: stubFactory("x"), wantErr: "non-empty"},
		{name: "nil factory", reg: "test-nil-factory", factory: nil, wantErr: "non-nil factory"},
		{name: "builtin collision", reg: "kairos", factory: stubFactory("x"), wantErr: "already registered"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := RegisterPolicy(tc.reg, tc.factory)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("RegisterPolicy(%q) error %v, want containing %q", tc.reg, err, tc.wantErr)
			}
		})
	}
}

// registerOnce registers a test policy, tolerating earlier registration —
// the registry is process-global and go test -count=N reruns tests in one
// process.
func registerOnce(t *testing.T, name string, factory PolicyFactory) {
	t.Helper()
	if HasPolicy(name) {
		return
	}
	if err := RegisterPolicy(name, factory); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterPolicyDuplicate(t *testing.T) {
	registerOnce(t, "test-dup", stubFactory("dup"))
	err := RegisterPolicy("test-dup", stubFactory("dup2"))
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate registration error = %v", err)
	}
}

func TestPoliciesListsBuiltinsSorted(t *testing.T) {
	names := Policies()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Policies() not sorted: %v", names)
		}
	}
	for _, want := range []string{
		"kairos", "kairos+warm", "kairos+partitioned",
		"ribbon", "drs", "clockwork", "fcfs", "least-loaded",
	} {
		if !HasPolicy(want) {
			t.Fatalf("builtin policy %q missing from %v", want, names)
		}
	}
}

func TestNewPolicyLookup(t *testing.T) {
	pool := DefaultPool()
	model, _ := ModelByName("RM2")
	ctx := PolicyContext{Pool: pool, Model: model}

	if _, err := NewPolicy("test-unknown-policy", ctx); err == nil {
		t.Fatal("unknown policy must error")
	}
	if _, err := NewPolicy("kairos", PolicyContext{Model: model}); err == nil {
		t.Fatal("empty pool context must error")
	}
	if _, err := NewPolicy("kairos", PolicyContext{Pool: pool}); err == nil {
		t.Fatal("zero-QoS model context must error")
	}

	// Every builtin builds a named distributor from a valid context.
	for _, name := range Policies() {
		if strings.HasPrefix(name, "test-") {
			continue // test doubles registered by this suite
		}
		d, err := NewPolicy(name, ctx)
		if err != nil {
			t.Fatalf("NewPolicy(%q) error: %v", name, err)
		}
		if d.Name() == "" {
			t.Fatalf("NewPolicy(%q) returned unnamed distributor", name)
		}
	}
}

func TestRegisteredPolicyDrivesEngine(t *testing.T) {
	registerOnce(t, "test-engine-stub", stubFactory("STUB"))
	pool := DefaultPool()
	model, _ := ModelByName("RM2")
	e, err := New(WithPool(pool), WithModel(model), WithPolicy("test-engine-stub"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.Serve()
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "STUB" {
		t.Fatalf("Serve() policy name = %q, want STUB", d.Name())
	}
}

func TestNewPolicyParameterDefaults(t *testing.T) {
	pool := DefaultPool()
	model, _ := ModelByName("RM2")

	d, err := NewPolicy("drs", PolicyContext{Pool: pool, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("DRS(t=%d)", DefaultDRSThreshold); d.Name() != want {
		t.Fatalf("default DRS name = %q, want %q", d.Name(), want)
	}
	if _, err := NewPolicy("drs", PolicyContext{Pool: pool, Model: model, DRSThreshold: -1}); err == nil {
		t.Fatal("negative DRS threshold must error")
	}

	p, err := NewPolicy("kairos+partitioned", PolicyContext{Pool: pool, Model: model, Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Name(), "POP-3x") {
		t.Fatalf("partitioned name = %q, want POP-3x prefix", p.Name())
	}
	if _, err := NewPolicy("kairos+partitioned", PolicyContext{Pool: pool, Model: model, Partitions: -2}); err == nil {
		t.Fatal("negative partitions must error")
	}
}
